//! Property tests for the graph crate's own invariants, driven by a
//! deterministic hand-rolled LCG case generator (no external
//! property-testing dependency).

use tc_graph::{AdjacencyList, Csr, EdgeArray, Orientation};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// ≤ 200 edge attempts over ≤ 60 vertices.
fn random_pairs(case: u64) -> Vec<(u32, u32)> {
    let mut rng = Lcg(0xA076_1D64_78BD_642F ^ case.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    let attempts = rng.below(201) as usize;
    (0..attempts)
        .map(|_| (rng.below(60) as u32, rng.below(60) as u32))
        .collect()
}

const CASES: u64 = 96;

#[test]
fn constructor_output_always_validates() {
    for case in 0..CASES {
        let g = EdgeArray::from_undirected_pairs(random_pairs(case));
        assert!(g.validate().is_ok(), "case {case}");
        assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }
}

#[test]
fn degrees_sum_to_arc_count() {
    for case in 0..CASES {
        let g = EdgeArray::from_undirected_pairs(random_pairs(case));
        let total: u64 = g.degrees().iter().map(|&d| d as u64).sum();
        assert_eq!(total, g.num_arcs() as u64, "case {case}");
    }
}

#[test]
fn csr_roundtrip_preserves_arcs() {
    for case in 0..CASES {
        let g = EdgeArray::from_undirected_pairs(random_pairs(case));
        let csr = Csr::from_edge_array(&g).unwrap();
        assert_eq!(csr.num_arcs(), g.num_arcs(), "case {case}");
        let back = csr.to_edge_array();
        let mut a: Vec<u64> = g.arcs().iter().map(|e| e.as_u64_first_major()).collect();
        let mut b: Vec<u64> = back.arcs().iter().map(|e| e.as_u64_first_major()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

#[test]
fn csr_neighbor_lists_sorted_and_complete() {
    for case in 0..CASES {
        let g = EdgeArray::from_undirected_pairs(random_pairs(case));
        let csr = Csr::from_edge_array(&g).unwrap();
        for v in 0..csr.num_nodes() as u32 {
            let nb = csr.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "case {case}");
            assert_eq!(nb.len() as u32, csr.degree(v));
            // Symmetry: u in N(v) <=> v in N(u).
            for &u in nb {
                assert!(csr.neighbors(u).binary_search(&v).is_ok());
            }
        }
    }
}

#[test]
fn adjacency_roundtrip() {
    for case in 0..CASES {
        let g = EdgeArray::from_undirected_pairs(random_pairs(case));
        let adj = AdjacencyList::from_edge_array(&g);
        let back = adj.to_edge_array();
        assert_eq!(back.num_arcs(), g.num_arcs(), "case {case}");
        assert!(back.validate().is_ok());
    }
}

#[test]
fn orientation_is_a_partition_of_edges() {
    for case in 0..CASES {
        let g = EdgeArray::from_undirected_pairs(random_pairs(case));
        let orientation = Orientation::forward(&g).unwrap();
        // Every undirected edge appears exactly once, in exactly one
        // direction.
        let mut oriented: Vec<(u32, u32)> = orientation
            .csr
            .arcs()
            .map(|e| if e.u < e.v { (e.u, e.v) } else { (e.v, e.u) })
            .collect();
        oriented.sort_unstable();
        let mut undirected: Vec<(u32, u32)> = g.undirected_iter().collect();
        undirected.sort_unstable();
        assert_eq!(oriented, undirected, "case {case}");
    }
}

#[test]
fn text_io_roundtrip() {
    for case in 0..CASES {
        let g = EdgeArray::from_undirected_pairs(random_pairs(case));
        let mut buf: Vec<u8> = Vec::new();
        {
            use std::io::Write;
            for (u, v) in g.undirected_iter() {
                writeln!(buf, "{u} {v}").unwrap();
            }
        }
        let h = tc_graph::io::read_text_from(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(h.num_edges(), g.num_edges(), "case {case}");
    }
}
