//! Conversions and relabelings between graph representations.
//!
//! The representation-specific conversions live on the types themselves
//! ([`AdjacencyList::to_edge_array`], [`AdjacencyList::from_edge_array`],
//! [`crate::Csr::from_edge_array`]); this module adds vertex-relabeling utilities
//! used by tests (triangle counts are isomorphism-invariant) and by the
//! harness (arc shuffling, since the paper assumes "no particular order of
//! the edges").

use crate::{AdjacencyList, Edge, EdgeArray, VertexId};

/// Apply a vertex relabeling: arc `(u, v)` becomes `(perm[u], perm[v])`.
/// `perm` must be a permutation of `0..g.num_nodes()`.
pub fn relabel(g: &EdgeArray, perm: &[VertexId]) -> EdgeArray {
    assert!(perm.len() >= g.num_nodes(), "permutation too short");
    EdgeArray::from_arcs_unchecked(
        g.arcs()
            .iter()
            .map(|e| Edge::new(perm[e.u as usize], perm[e.v as usize]))
            .collect(),
    )
}

/// Compact the vertex-id space: vertices that occur in some arc are
/// renumbered densely `0..k` preserving relative order; returns the new graph
/// and the old→new map (`u32::MAX` for unused ids).
pub fn renumber_dense(g: &EdgeArray) -> (EdgeArray, Vec<VertexId>) {
    let n = g.num_nodes();
    let mut used = vec![false; n];
    for e in g.arcs() {
        used[e.u as usize] = true;
        used[e.v as usize] = true;
    }
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for (v, &u) in used.iter().enumerate() {
        if u {
            map[v] = next;
            next += 1;
        }
    }
    let relabeled = EdgeArray::from_arcs_unchecked(
        g.arcs()
            .iter()
            .map(|e| Edge::new(map[e.u as usize], map[e.v as usize]))
            .collect(),
    );
    (relabeled, map)
}

/// Deterministically shuffle arc order with a Fisher–Yates pass driven by a
/// SplitMix64 stream. Only the *order* of arcs changes; the graph is
/// unchanged (the paper's input contract promises nothing about arc order).
pub fn shuffle_arcs(g: &mut EdgeArray, seed: u64) {
    let arcs = g.arcs_mut();
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..arcs.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        arcs.swap(i, j);
    }
}

/// Produce a random vertex permutation of `0..n` (Fisher–Yates, SplitMix64).
pub fn random_permutation(n: usize, seed: u64) -> Vec<VertexId> {
    let mut perm: Vec<VertexId> = (0..n as u32).collect();
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..perm.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Convenience: edge array → adjacency list → edge array, asserting the
/// round trip preserves the arc multiset. Used by the §III-A input-format
/// experiment to measure conversion costs on equal footing.
pub fn roundtrip_via_adjacency(g: &EdgeArray) -> EdgeArray {
    AdjacencyList::from_edge_array(g).to_edge_array()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeArray {
        EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0), (2, 4)])
    }

    fn arc_multiset(g: &EdgeArray) -> Vec<u64> {
        let mut v: Vec<u64> = g.arcs().iter().map(|e| e.as_u64_first_major()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn relabel_identity_is_noop() {
        let g = sample();
        let n = g.num_nodes();
        let id: Vec<u32> = (0..n as u32).collect();
        assert_eq!(arc_multiset(&relabel(&g, &id)), arc_multiset(&g));
    }

    #[test]
    fn relabel_preserves_validity() {
        let g = sample();
        let perm = random_permutation(g.num_nodes(), 42);
        let h = relabel(&g, &perm);
        h.validate().unwrap();
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn renumber_dense_compacts_gaps() {
        let g = EdgeArray::from_undirected_pairs([(0, 10), (10, 20)]);
        let (h, map) = renumber_dense(&g);
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(map[0], 0);
        assert_eq!(map[10], 1);
        assert_eq!(map[20], 2);
        assert_eq!(map[5], u32::MAX);
        h.validate().unwrap();
    }

    #[test]
    fn shuffle_preserves_multiset_and_is_deterministic() {
        let mut a = sample();
        let mut b = sample();
        let before = arc_multiset(&a);
        shuffle_arcs(&mut a, 7);
        shuffle_arcs(&mut b, 7);
        assert_eq!(arc_multiset(&a), before);
        assert_eq!(a.arcs(), b.arcs());
        let mut c = sample();
        shuffle_arcs(&mut c, 8);
        // Different seed almost surely gives a different order.
        assert_ne!(a.arcs(), c.arcs());
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let p = random_permutation(100, 3);
        let mut sorted = p;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn roundtrip_via_adjacency_preserves_arcs() {
        let g = sample();
        assert_eq!(arc_multiset(&roundtrip_via_adjacency(&g)), arc_multiset(&g));
    }
}
