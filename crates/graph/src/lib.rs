//! Graph data structures for triangle counting.
//!
//! This crate provides the host-side graph representations used by the
//! reproduction of Polak's *Counting Triangles in Large Graphs on GPU*
//! (IPDPSW 2016):
//!
//! * [`EdgeArray`] — the paper's input format (§III-A): an array of directed
//!   arcs in which every undirected edge appears exactly twice, once per
//!   direction, with no self-loops and no multi-edges, in no particular order.
//! * [`EdgeSoA`] — the "unzipped" structure-of-arrays layout produced by
//!   preprocessing step 7 (§III-B).
//! * [`Csr`] — a compressed sparse row view (the paper's *node array* plus the
//!   sorted edge array; §III-B steps 3–4).
//! * [`AdjacencyList`] — a plain adjacency-list representation, used to
//!   reproduce the input-format comparison of §III-A.
//! * [`order`] — the degree-based total order ≺ and the *forward orientation*
//!   that keeps only edges from lower-degree to higher-degree endpoints
//!   (§II-B).
//! * [`io`] — SNAP-style text and raw binary edge-list readers/writers.
//!
//! Vertex identifiers are `u32`, matching the `int` identifiers of the paper's
//! CUDA implementation; edge counts fit in `u32` as well (the largest paper
//! graph has 234 M directed arcs).

#![forbid(unsafe_code)]

pub mod adjacency;
pub mod convert;
pub mod cores;
pub mod csr;
pub mod edge_array;
pub mod error;
pub mod io;
pub mod order;
pub mod stats;

pub use adjacency::AdjacencyList;
pub use csr::Csr;
pub use edge_array::{Edge, EdgeArray, EdgeSoA};
pub use error::GraphError;
pub use order::{DegreeOrder, Orientation};
pub use stats::GraphStats;

/// Vertex identifier. The paper's implementation uses C `int`; all graphs in
/// the evaluation have < 2^31 vertices, so `u32` is faithful and halves the
/// memory traffic relative to `u64`.
pub type VertexId = u32;
