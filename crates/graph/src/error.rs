//! Error type shared by the graph crate.

use std::fmt;

/// Errors produced while constructing, validating, or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge connects a vertex to itself. The forward algorithm assumes
    /// simple graphs (§III-A: "no self-loops nor multiple edges").
    SelfLoop { vertex: u32 },
    /// The same undirected edge appears more than twice (or the same arc
    /// appears more than once).
    DuplicateEdge { u: u32, v: u32 },
    /// An arc `(u, v)` is present without its reverse `(v, u)`. A valid edge
    /// array stores every undirected edge once in each direction.
    MissingReverse { u: u32, v: u32 },
    /// The graph has more vertices or edges than the `u32` index space.
    TooLarge { what: &'static str, count: u64 },
    /// A line of a text edge list could not be parsed.
    Parse { line: u64, message: String },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A binary edge-list file has a length that is not a whole number of
    /// `(u32, u32)` records.
    TruncatedBinary { len: u64 },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::MissingReverse { u, v } => {
                write!(f, "arc ({u}, {v}) has no reverse arc ({v}, {u})")
            }
            GraphError::TooLarge { what, count } => {
                write!(f, "{what} count {count} exceeds u32 index space")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::TruncatedBinary { len } => {
                write!(f, "binary edge list of {len} bytes is not a multiple of 8")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (GraphError::SelfLoop { vertex: 7 }, "self-loop"),
            (GraphError::DuplicateEdge { u: 1, v: 2 }, "duplicate"),
            (GraphError::MissingReverse { u: 3, v: 4 }, "reverse"),
            (
                GraphError::TooLarge {
                    what: "edge",
                    count: 1 << 40,
                },
                "exceeds",
            ),
            (
                GraphError::Parse {
                    line: 12,
                    message: "bad token".into(),
                },
                "line 12",
            ),
            (GraphError::TruncatedBinary { len: 9 }, "multiple of 8"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_error_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err = GraphError::from(io);
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("gone"));
    }
}
