//! The degree order ≺ and the forward orientation (paper §II-B).
//!
//! The forward algorithm fixes a total order ≺ on vertices consistent with
//! degrees — `deg(u) < deg(v)` implies `u ≺ v`, ties broken by identifier
//! (§III-B step 5) — and keeps only the arcs that go *forward* in that order.
//! Each undirected edge thus becomes one arc from its lower-degree endpoint
//! to its higher-degree endpoint, every triangle is counted exactly once, and
//! no oriented adjacency list is longer than √(2m̂) where m̂ is the number of
//! undirected edges (Schank–Wagner / Latapy).

use crate::{Csr, Edge, EdgeArray, GraphError, VertexId};

/// The total order ≺: degree-major, vertex-id minor.
#[derive(Clone, Debug)]
pub struct DegreeOrder {
    degrees: Vec<u32>,
}

impl DegreeOrder {
    /// Compute the order from an edge array (one pass over the arcs).
    pub fn from_edge_array(g: &EdgeArray) -> Self {
        DegreeOrder {
            degrees: g.degrees(),
        }
    }

    /// Wrap precomputed degrees.
    pub fn from_degrees(degrees: Vec<u32>) -> Self {
        DegreeOrder { degrees }
    }

    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.degrees[v as usize]
    }

    #[inline]
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Does `u ≺ v`?
    #[inline]
    pub fn precedes(&self, u: VertexId, v: VertexId) -> bool {
        let (du, dv) = (self.degrees[u as usize], self.degrees[v as usize]);
        du < dv || (du == dv && u < v)
    }

    /// Is the arc `e.u -> e.v` a *backward* arc (one the preprocessing marks
    /// for removal in step 5)?
    #[inline]
    pub fn is_backward(&self, e: Edge) -> bool {
        self.precedes(e.v, e.u)
    }
}

/// A forward-oriented graph: the compacted arc set plus its node array.
#[derive(Clone, Debug)]
pub struct Orientation {
    /// CSR over the *oriented* arcs: `csr.neighbors(v)` are the forward
    /// neighbours of `v`, sorted ascending by identifier (the "arbitrary,
    /// previously fixed, linear order" the paper sorts lists by).
    pub csr: Csr,
    /// The order used, so callers can re-check invariants.
    pub order: DegreeOrder,
}

impl Orientation {
    /// Orient an edge array forward: drop backward arcs, then build the node
    /// array over what remains. This is the CPU reference for preprocessing
    /// steps 5–8 (the GPU pipeline in `tc-core` must produce identical
    /// output).
    pub fn forward(g: &EdgeArray) -> Result<Self, GraphError> {
        let order = DegreeOrder::from_edge_array(g);
        let kept: Vec<Edge> = g
            .arcs()
            .iter()
            .copied()
            .filter(|&e| !order.is_backward(e))
            .collect();
        let mut oriented = EdgeArray::from_arcs_unchecked(kept);
        // Preserve the original vertex-id space even if the top-ordered
        // vertices lost all outgoing arcs.
        let n = g.num_nodes();
        let csr = csr_with_nodes(&mut oriented, n)?;
        Ok(Orientation { csr, order })
    }

    /// Orient forward in an arbitrary rank order: keep arc `(u, v)` iff
    /// `(ranks[u], u) < (ranks[v], v)`. With `ranks = degrees` this is
    /// [`Orientation::forward`]; with the degeneracy peel positions it is
    /// the degeneracy orientation (see [`crate::cores`]). The stored
    /// [`DegreeOrder`] wraps the ranks, so `order.precedes` answers the
    /// rank order used.
    pub fn forward_with_ranks(g: &EdgeArray, ranks: &[u32]) -> Result<Self, GraphError> {
        assert!(ranks.len() >= g.num_nodes(), "rank table too short");
        let order = DegreeOrder::from_degrees(ranks.to_vec());
        let kept: Vec<Edge> = g
            .arcs()
            .iter()
            .copied()
            .filter(|&e| !order.is_backward(e))
            .collect();
        let mut oriented = EdgeArray::from_arcs_unchecked(kept);
        let n = g.num_nodes();
        let csr = csr_with_nodes(&mut oriented, n)?;
        Ok(Orientation { csr, order })
    }

    /// Fully parallel orientation (tc-par): parallel degree histogram,
    /// parallel backward-arc filter, parallel sort of the packed arcs, then
    /// boundary detection — the same steps the GPU preprocessing runs, on
    /// the host. Produces output identical to [`Orientation::forward`].
    pub fn forward_parallel(g: &EdgeArray) -> Result<Self, GraphError> {
        let n = g.num_nodes();
        let m = g.num_arcs();
        if m > u32::MAX as usize {
            return Err(GraphError::TooLarge {
                what: "arc",
                count: m as u64,
            });
        }
        // Parallel degree histogram: per-chunk local counts, merged in
        // chunk order.
        let locals = tc_par::map_chunks(g.arcs(), 64 * 1024, |_, chunk| {
            let mut local = vec![0u32; n];
            for e in chunk {
                local[e.u as usize] += 1;
            }
            local
        });
        let mut degrees = vec![0u32; n];
        for local in locals {
            for (x, y) in degrees.iter_mut().zip(local) {
                *x += y;
            }
        }
        let order = DegreeOrder::from_degrees(degrees);
        // Parallel filter + pack, parallel sort (the host analog of
        // preprocessing steps 3–6).
        let mut keys: Vec<u64> = tc_par::map_chunks(g.arcs(), 64 * 1024, |_, chunk| {
            chunk
                .iter()
                .filter(|&&e| !order.is_backward(e))
                .map(|e| e.as_u64_first_major())
                .collect::<Vec<u64>>()
        })
        .into_iter()
        .flatten()
        .collect();
        tc_par::sort_unstable(&mut keys);
        // Boundary detection into the node array.
        let mut offsets = vec![0u32; n + 1];
        offsets[n] = keys.len() as u32;
        // Sequential boundary pass (cheap: one compare per arc).
        let mut prev = 0usize;
        for (i, &k) in keys.iter().enumerate() {
            let u = (k >> 32) as usize;
            while prev <= u {
                offsets[prev] = i as u32;
                prev += 1;
            }
        }
        while prev <= n {
            offsets[prev] = keys.len() as u32;
            prev += 1;
        }
        let targets: Vec<u32> = tc_par::map_slice(&keys, |&k| k as u32);
        Ok(Orientation {
            csr: Csr::from_parts(offsets, targets),
            order,
        })
    }

    /// Number of oriented arcs — exactly the number of undirected edges for a
    /// valid input.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.csr.num_arcs()
    }

    /// Maximum forward out-degree. The forward algorithm's complexity bound
    /// rests on this being ≤ √(2·num_edges).
    pub fn max_out_degree(&self) -> u32 {
        self.csr.max_degree()
    }
}

/// Build a CSR over `g` forcing `num_nodes` (so trailing vertices with no
/// outgoing arcs still get (empty) rows).
fn csr_with_nodes(g: &mut EdgeArray, num_nodes: usize) -> Result<Csr, GraphError> {
    let m = g.num_arcs();
    if m > u32::MAX as usize {
        return Err(GraphError::TooLarge {
            what: "arc",
            count: m as u64,
        });
    }
    let mut offsets = vec![0u32; num_nodes + 1];
    for e in g.arcs() {
        offsets[e.u as usize + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut cursor = offsets.clone();
    let mut targets = vec![0u32; m];
    for e in g.arcs() {
        let slot = cursor[e.u as usize] as usize;
        targets[slot] = e.v;
        cursor[e.u as usize] += 1;
    }
    for v in 0..num_nodes {
        let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
        targets[lo..hi].sort_unstable();
    }
    Ok(Csr::from_parts(offsets, targets))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_triangle() -> EdgeArray {
        // vertex 0 is a hub (degree 4); triangle 1-2-3 hangs off it.
        EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (2, 3), (1, 3)])
    }

    #[test]
    fn order_is_total_and_antisymmetric() {
        let g = star_plus_triangle();
        let ord = DegreeOrder::from_edge_array(&g);
        let n = g.num_nodes() as u32;
        for u in 0..n {
            assert!(!ord.precedes(u, u));
            for v in 0..n {
                if u != v {
                    assert_ne!(ord.precedes(u, v), ord.precedes(v, u));
                }
            }
        }
    }

    #[test]
    fn order_is_consistent_with_degrees() {
        let g = star_plus_triangle();
        let ord = DegreeOrder::from_edge_array(&g);
        // vertex 4 has degree 1, vertex 0 degree 4: 4 ≺ 0.
        assert!(ord.precedes(4, 0));
        assert!(!ord.precedes(0, 4));
        // equal degrees tie-break on id: deg(1) == deg(2) == deg(3) == 3.
        assert!(ord.precedes(1, 2));
        assert!(ord.precedes(2, 3));
    }

    #[test]
    fn orientation_halves_the_arcs() {
        let g = star_plus_triangle();
        let orient = Orientation::forward(&g).unwrap();
        assert_eq!(orient.num_arcs(), g.num_edges());
        // Every oriented arc goes forward in ≺.
        for e in orient.csr.arcs() {
            assert!(orient.order.precedes(e.u, e.v), "arc {e:?} is backward");
        }
    }

    #[test]
    fn orientation_is_acyclic_by_construction() {
        // ≺ is a total order, so forward arcs form a DAG; spot-check there is
        // no 2-cycle.
        let g = star_plus_triangle();
        let orient = Orientation::forward(&g).unwrap();
        for e in orient.csr.arcs() {
            assert!(!orient.csr.neighbors(e.v).contains(&e.u));
        }
    }

    #[test]
    fn oriented_lists_sorted_by_vertex_id() {
        let g = star_plus_triangle();
        let orient = Orientation::forward(&g).unwrap();
        for v in 0..orient.csr.num_nodes() as u32 {
            let nb = orient.csr.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn hub_has_no_outgoing_arcs() {
        let g = star_plus_triangle();
        let orient = Orientation::forward(&g).unwrap();
        // vertex 0 has the highest degree: everything points at it.
        assert_eq!(orient.csr.degree(0), 0);
        // but the node array still covers it.
        assert_eq!(orient.csr.num_nodes(), g.num_nodes());
    }

    #[test]
    fn out_degree_bound_holds() {
        let g = star_plus_triangle();
        let orient = Orientation::forward(&g).unwrap();
        let bound = (2.0 * g.num_edges() as f64).sqrt().ceil() as u32;
        assert!(orient.max_out_degree() <= bound);
    }

    #[test]
    fn empty_graph_orients_to_empty() {
        let orient = Orientation::forward(&EdgeArray::default()).unwrap();
        assert_eq!(orient.num_arcs(), 0);
        assert_eq!(orient.csr.num_nodes(), 0);
        let par = Orientation::forward_parallel(&EdgeArray::default()).unwrap();
        assert_eq!(par.num_arcs(), 0);
    }

    #[test]
    fn parallel_orientation_matches_sequential() {
        // Deterministic pseudo-random graph with isolated vertices, hubs,
        // and ties.
        let mut pairs = Vec::new();
        let mut x = 1u64;
        for _ in 0..800 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((x >> 33) % 150) as u32;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((x >> 33) % 150) as u32;
            pairs.push((a, b));
        }
        pairs.push((0, 200)); // trailing isolated range up to 200
        let g = EdgeArray::from_undirected_pairs(pairs);
        let seq = Orientation::forward(&g).unwrap();
        let par = Orientation::forward_parallel(&g).unwrap();
        assert_eq!(par.csr, seq.csr);
    }

    #[test]
    fn parallel_orientation_on_small_fixtures() {
        for g in [
            star_plus_triangle(),
            EdgeArray::from_undirected_pairs([(0, 1)]),
            EdgeArray::from_undirected_pairs([(5, 9)]),
        ] {
            let seq = Orientation::forward(&g).unwrap();
            let par = Orientation::forward_parallel(&g).unwrap();
            assert_eq!(par.csr, seq.csr);
        }
    }
}
