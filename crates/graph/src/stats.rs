//! Basic graph statistics (the "Nodes / Edges" columns of Table I, degree
//! distributions, wedge counts for the transitivity ratio).

use crate::{Csr, EdgeArray};

/// Summary statistics of a graph, as reported in Table I plus a few extras
/// that drive the evaluation narrative (degree skew explains Table II's
/// cache-hit spread; the wedge count feeds the transitivity ratio).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    pub num_nodes: usize,
    pub num_edges: usize,
    pub max_degree: u32,
    pub avg_degree: f64,
    /// Number of paths of length two ("wedges"): Σ_v d(v)·(d(v)−1)/2.
    pub wedges: u64,
}

impl GraphStats {
    pub fn from_edge_array(g: &EdgeArray) -> Self {
        let degrees = g.degrees();
        Self::from_degrees(&degrees, g.num_edges())
    }

    pub fn from_csr(csr: &Csr) -> Self {
        let degrees: Vec<u32> = (0..csr.num_nodes() as u32).map(|v| csr.degree(v)).collect();
        Self::from_degrees(&degrees, csr.num_arcs() / 2)
    }

    fn from_degrees(degrees: &[u32], num_edges: usize) -> Self {
        let num_nodes = degrees.len();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let wedges: u64 = tc_par::sum_by_u64(degrees.len(), |i| {
            let d = degrees[i] as u64;
            d * d.saturating_sub(1) / 2
        });
        let avg_degree = if num_nodes == 0 {
            0.0
        } else {
            2.0 * num_edges as f64 / num_nodes as f64
        };
        GraphStats {
            num_nodes,
            num_edges,
            max_degree,
            avg_degree,
            wedges,
        }
    }
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &EdgeArray) -> Vec<usize> {
    let degrees = g.degrees();
    let max = degrees.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0usize; max + 1];
    for d in degrees {
        hist[d as usize] += 1;
    }
    hist
}

/// Coefficient of variation of the degree distribution — the "deviation from
/// the average degree" §II-A says separates edge-iterator-friendly graphs
/// from forward-friendly ones.
pub fn degree_cv(g: &EdgeArray) -> f64 {
    let degrees = g.degrees();
    if degrees.is_empty() {
        return 0.0;
    }
    let n = degrees.len() as f64;
    let mean = degrees.iter().map(|&d| d as f64).sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = degrees
        .iter()
        .map(|&d| {
            let diff = d as f64 - mean;
            diff * diff
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> EdgeArray {
        EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn stats_of_small_graph() {
        let g = triangle_plus_tail();
        let s = GraphStats::from_edge_array(&g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_degree, 3);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        // wedges: d = [2,2,3,1] -> 1 + 1 + 3 + 0 = 5
        assert_eq!(s.wedges, 5);
    }

    #[test]
    fn stats_from_csr_match_edge_array() {
        let g = triangle_plus_tail();
        let csr = Csr::from_edge_array(&g).unwrap();
        assert_eq!(GraphStats::from_csr(&csr), GraphStats::from_edge_array(&g));
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = triangle_plus_tail();
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.num_nodes());
        assert_eq!(hist[3], 1);
        assert_eq!(hist[2], 2);
        assert_eq!(hist[1], 1);
    }

    #[test]
    fn regular_graph_has_zero_cv() {
        // 4-cycle: every vertex has degree 2.
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(degree_cv(&g) < 1e-12);
    }

    #[test]
    fn star_has_high_cv() {
        let g = EdgeArray::from_undirected_pairs((1..=20u32).map(|v| (0, v)));
        assert!(degree_cv(&g) > 1.5);
    }

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::from_edge_array(&EdgeArray::default());
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.wedges, 0);
        assert_eq!(degree_cv(&EdgeArray::default()), 0.0);
    }
}
