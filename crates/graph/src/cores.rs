//! k-core decomposition and the degeneracy ordering.
//!
//! The paper's forward algorithm orients by *degree* (§II-B), which bounds
//! oriented out-degrees by √(2m̂). The classical refinement — orienting by
//! the *degeneracy (peel) order* instead — bounds out-degrees by the
//! graph's degeneracy `d ≤ √(2m̂)`, which is much smaller on real networks
//! (Ortmann–Brandes study exactly this family of orderings). This module
//! provides the linear-time Batagelj–Zaveršnik peeling and an
//! [`Orientation`]-compatible ordering, as an extension beyond the paper.

use crate::{Csr, EdgeArray, GraphError, Orientation};

/// Result of the peeling: per-vertex core numbers, the peel order, and the
/// degeneracy (the largest core number).
#[derive(Clone, Debug)]
pub struct CoreDecomposition {
    /// `core[v]` = largest k such that v belongs to the k-core.
    pub core: Vec<u32>,
    /// `position[v]` = index of v in the degeneracy (peel) order.
    pub position: Vec<u32>,
    /// max over `core`.
    pub degeneracy: u32,
}

/// Linear-time k-core peeling (bucket queue over degrees).
pub fn core_decomposition(g: &EdgeArray) -> Result<CoreDecomposition, GraphError> {
    let csr = Csr::from_edge_array(g)?;
    let n = csr.num_nodes();
    if n == 0 {
        return Ok(CoreDecomposition {
            core: vec![],
            position: vec![],
            degeneracy: 0,
        });
    }
    let mut degree: Vec<u32> = (0..n as u32).map(|v| csr.degree(v)).collect();
    let max_degree = *degree.iter().max().unwrap() as usize;

    // Bucket sort vertices by degree.
    let mut bucket_start = vec![0u32; max_degree + 2];
    for &d in &degree {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 1..bucket_start.len() {
        bucket_start[i] += bucket_start[i - 1];
    }
    let mut order = vec![0u32; n]; // vertices sorted by current degree
    let mut pos_in_order = vec![0u32; n];
    {
        let mut cursor = bucket_start.clone();
        for v in 0..n as u32 {
            let d = degree[v as usize] as usize;
            order[cursor[d] as usize] = v;
            pos_in_order[v as usize] = cursor[d];
            cursor[d] += 1;
        }
    }
    // bucket_start[d] = first index in `order` whose degree is ≥ d.
    let mut bucket_first = vec![0u32; max_degree + 1];
    bucket_first.copy_from_slice(&bucket_start[..=max_degree]);

    let mut core = vec![0u32; n];
    let mut position = vec![0u32; n];
    let mut current_core = 0u32;
    for i in 0..n {
        let v = order[i];
        current_core = current_core.max(degree[v as usize]);
        core[v as usize] = current_core;
        position[v as usize] = i as u32;
        // "Remove" v: decrement the degrees of its not-yet-peeled
        // neighbours, moving each one bucket down.
        for &w in csr.neighbors(v) {
            let dw = degree[w as usize];
            if dw > degree[v as usize] && (pos_in_order[w as usize] as usize) > i {
                // Swap w with the first vertex of its bucket.
                let pw = pos_in_order[w as usize];
                let first = bucket_first[dw as usize].max(i as u32 + 1);
                let u = order[first as usize];
                order.swap(pw as usize, first as usize);
                pos_in_order.swap(w as usize, u as usize);
                bucket_first[dw as usize] = first + 1;
                degree[w as usize] -= 1;
            }
        }
    }
    let degeneracy = core.iter().copied().max().unwrap_or(0);
    Ok(CoreDecomposition {
        core,
        position,
        degeneracy,
    })
}

/// Orient every edge forward in the degeneracy (peel) order: out-degrees
/// are bounded by the degeneracy. Drop-in alternative to
/// [`Orientation::forward`]; counting over it yields identical totals.
pub fn orient_by_degeneracy(g: &EdgeArray) -> Result<(Orientation, CoreDecomposition), GraphError> {
    let decomp = core_decomposition(g)?;
    let orientation = Orientation::forward_with_ranks(g, &decomp.position)?;
    Ok((orientation, decomp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_core_numbers() {
        let mut pairs = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                pairs.push((a, b));
            }
        }
        let g = EdgeArray::from_undirected_pairs(pairs);
        let d = core_decomposition(&g).unwrap();
        assert_eq!(d.degeneracy, 5);
        assert!(d.core.iter().all(|&c| c == 5));
    }

    #[test]
    fn tree_has_degeneracy_one() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (1, 3), (3, 4), (3, 5)]);
        let d = core_decomposition(&g).unwrap();
        assert_eq!(d.degeneracy, 1);
    }

    #[test]
    fn cycle_has_degeneracy_two() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(core_decomposition(&g).unwrap().degeneracy, 2);
    }

    #[test]
    fn clique_plus_fringe_separates_cores() {
        // K5 core with pendant leaves.
        let mut pairs = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                pairs.push((a, b));
            }
        }
        for leaf in 5..15u32 {
            pairs.push((leaf, leaf % 5));
        }
        let g = EdgeArray::from_undirected_pairs(pairs);
        let d = core_decomposition(&g).unwrap();
        assert_eq!(d.degeneracy, 4);
        for v in 0..5 {
            assert_eq!(d.core[v], 4, "core vertex {v}");
        }
        for v in 5..15 {
            assert_eq!(d.core[v], 1, "leaf {v}");
        }
    }

    #[test]
    fn peel_positions_are_a_permutation() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let d = core_decomposition(&g).unwrap();
        let mut seen = d.position;
        seen.sort_unstable();
        assert_eq!(seen, (0..g.num_nodes() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn degeneracy_orientation_bounds_out_degree() {
        // Star: degree orientation would give the hub out-degree 0 anyway;
        // use a hub-and-clique mix to exercise the bound.
        let mut pairs = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                pairs.push((a, b));
            }
        }
        for leaf in 8..40u32 {
            pairs.push((leaf, 0));
        }
        let g = EdgeArray::from_undirected_pairs(pairs);
        let (orientation, decomp) = orient_by_degeneracy(&g).unwrap();
        assert!(orientation.max_out_degree() <= decomp.degeneracy);
        assert_eq!(orientation.num_arcs(), g.num_edges());
    }

    #[test]
    fn empty_graph() {
        let d = core_decomposition(&EdgeArray::default()).unwrap();
        assert_eq!(d.degeneracy, 0);
        assert!(d.core.is_empty());
    }
}
