//! Edge-list I/O.
//!
//! Two on-disk formats:
//!
//! * **Text** — SNAP-style: one `u v` pair per line, `#`-prefixed comment
//!   lines ignored, whitespace-separated. Pairs are treated as *undirected*
//!   edges; self-loops and duplicates are cleaned up on load (SNAP dumps
//!   contain both directions already, which the dedup handles).
//! * **Binary** — little-endian `(u32, u32)` records of the *directed* edge
//!   array, a faithful dump of the in-memory input format.
//! * **METIS** — the adjacency format of the 10th DIMACS Implementation
//!   Challenge (the source of the paper's Citeseer/DBLP/Kronecker graphs):
//!   a header `n m [fmt]`, then line `i` lists the 1-indexed neighbours of
//!   vertex `i`.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{Edge, EdgeArray, GraphError};

/// Read a SNAP-style text edge list into a valid [`EdgeArray`].
pub fn read_text(path: impl AsRef<Path>) -> Result<EdgeArray, GraphError> {
    let file = File::open(path)?;
    read_text_from(BufReader::new(file))
}

/// Read a text edge list from any buffered reader.
pub fn read_text_from(reader: impl BufRead) -> Result<EdgeArray, GraphError> {
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut line_no = 0u64;
    for line in reader.lines() {
        line_no += 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = parse_field(it.next(), line_no, "missing first endpoint")?;
        let v = parse_field(it.next(), line_no, "missing second endpoint")?;
        if it.next().is_some() {
            // Extra columns (weights, timestamps) are tolerated and ignored,
            // as is conventional for SNAP dumps.
        }
        pairs.push((u, v));
    }
    Ok(EdgeArray::from_undirected_pairs(pairs))
}

fn parse_field(field: Option<&str>, line: u64, missing: &str) -> Result<u32, GraphError> {
    let tok = field.ok_or_else(|| GraphError::Parse {
        line,
        message: missing.to_string(),
    })?;
    tok.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad vertex id {tok:?}: {e}"),
    })
}

/// Write a text edge list: each undirected edge once (`u < v`), with a
/// header comment.
pub fn write_text(g: &EdgeArray, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(out, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.undirected_iter() {
        writeln!(out, "{u}\t{v}")?;
    }
    out.flush()?;
    Ok(())
}

/// Write the directed edge array as little-endian `(u32, u32)` records.
pub fn write_binary(g: &EdgeArray, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    for e in g.arcs() {
        out.write_all(&e.u.to_le_bytes())?;
        out.write_all(&e.v.to_le_bytes())?;
    }
    out.flush()?;
    Ok(())
}

/// Read a binary edge array written by [`write_binary`]. No cleanup is
/// performed — the file is trusted to contain a valid doubled edge array;
/// call [`EdgeArray::validate`] if the provenance is doubtful.
pub fn read_binary(path: impl AsRef<Path>) -> Result<EdgeArray, GraphError> {
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() % 8 != 0 {
        return Err(GraphError::TruncatedBinary {
            len: bytes.len() as u64,
        });
    }
    let mut arcs = Vec::with_capacity(bytes.len() / 8);
    for rec in bytes.chunks_exact(8) {
        let u = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
        let v = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]);
        arcs.push(Edge::new(u, v));
    }
    Ok(EdgeArray::from_arcs_unchecked(arcs))
}

/// Read a METIS/DIMACS-challenge adjacency file.
///
/// Only the unweighted variant (`fmt` absent or `0`/`00`/`000`) is
/// supported — that is what the 10th DIMACS graphs the paper uses are
/// distributed as. Comment lines start with `%`.
pub fn read_metis(path: impl AsRef<Path>) -> Result<EdgeArray, GraphError> {
    let file = File::open(path)?;
    read_metis_from(BufReader::new(file))
}

/// Read METIS adjacency data from any buffered reader.
pub fn read_metis_from(reader: impl BufRead) -> Result<EdgeArray, GraphError> {
    let mut lines = reader.lines();
    let mut line_no = 0u64;

    // Header: n m [fmt]
    let header = loop {
        line_no += 1;
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break t.to_string();
                }
            }
            None => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: "missing header".into(),
                })
            }
        }
    };
    let mut head = header.split_whitespace();
    let n: usize = head
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| GraphError::Parse {
            line: line_no,
            message: "bad vertex count".into(),
        })?;
    let m_declared: usize =
        head.next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: "bad edge count".into(),
            })?;
    if let Some(fmt) = head.next() {
        if fmt.chars().any(|c| c != '0') {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("weighted METIS format {fmt:?} not supported"),
            });
        }
    }

    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(m_declared);
    let mut vertex = 0u32;
    for line in lines {
        line_no += 1;
        let line = line?;
        let t = line.trim();
        if t.starts_with('%') {
            continue;
        }
        vertex += 1;
        if vertex as usize > n {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("more than {n} adjacency lines"),
            });
        }
        for tok in t.split_whitespace() {
            let nb: u32 = tok.parse().map_err(|e| GraphError::Parse {
                line: line_no,
                message: format!("bad neighbour {tok:?}: {e}"),
            })?;
            if nb == 0 || nb as usize > n {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("neighbour {nb} out of range 1..={n}"),
                });
            }
            pairs.push((vertex - 1, nb - 1)); // to 0-indexed
        }
    }
    Ok(EdgeArray::from_undirected_pairs(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> EdgeArray {
        EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0), (3, 1)])
    }

    #[test]
    fn text_roundtrip_through_memory() {
        let g = sample();
        let mut buf = Vec::new();
        writeln!(buf, "# a comment").unwrap();
        for (u, v) in g.undirected_iter() {
            writeln!(buf, "{u} {v}").unwrap();
        }
        let h = read_text_from(Cursor::new(buf)).unwrap();
        h.validate().unwrap();
        assert_eq!(h.num_edges(), g.num_edges());
        assert_eq!(h.num_nodes(), g.num_nodes());
    }

    #[test]
    fn text_reader_handles_comments_blanks_doubled_arcs_and_extra_columns() {
        let text = "# comment\n% other comment\n\n0 1 999\n1 0\n1\t2\n";
        let g = read_text_from(Cursor::new(text)).unwrap();
        assert_eq!(g.num_edges(), 2); // 0-1 (deduped) and 1-2
        g.validate().unwrap();
    }

    #[test]
    fn text_reader_rejects_garbage() {
        let err = read_text_from(Cursor::new("0 x\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
        let err = read_text_from(Cursor::new("\n\n7\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn file_roundtrips() {
        let dir = std::env::temp_dir().join("tc_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();

        let tpath = dir.join("g.txt");
        write_text(&g, &tpath).unwrap();
        let ht = read_text(&tpath).unwrap();
        assert_eq!(ht.num_edges(), g.num_edges());

        let bpath = dir.join("g.bin");
        write_binary(&g, &bpath).unwrap();
        let hb = read_binary(&bpath).unwrap();
        assert_eq!(hb.arcs(), g.arcs());
        hb.validate().unwrap();
    }

    #[test]
    fn binary_reader_rejects_truncated_file() {
        let dir = std::env::temp_dir().join("tc_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.bin");
        std::fs::write(&path, [0u8; 9]).unwrap();
        assert!(matches!(
            read_binary(&path),
            Err(GraphError::TruncatedBinary { len: 9 })
        ));
    }

    #[test]
    fn metis_reads_the_dimacs_example() {
        // A triangle plus a pendant vertex, in 1-indexed METIS adjacency.
        let text = "% a comment\n4 4\n2 3\n1 3 4\n1 2\n2\n";
        let g = read_metis_from(Cursor::new(text)).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn metis_accepts_unweighted_fmt_flag_and_rejects_weighted() {
        let ok = "2 1 0\n2\n1\n";
        assert_eq!(read_metis_from(Cursor::new(ok)).unwrap().num_edges(), 1);
        let weighted = "2 1 1\n2 5\n1 5\n";
        assert!(matches!(
            read_metis_from(Cursor::new(weighted)),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn metis_rejects_bad_headers_and_out_of_range() {
        assert!(read_metis_from(Cursor::new("")).is_err());
        assert!(read_metis_from(Cursor::new("x y\n")).is_err());
        let out_of_range = "2 1\n3\n\n";
        assert!(matches!(
            read_metis_from(Cursor::new(out_of_range)),
            Err(GraphError::Parse { .. })
        ));
        let too_many_lines = "1 0\n\n\n\n";
        assert!(read_metis_from(Cursor::new(too_many_lines)).is_err());
    }

    #[test]
    fn metis_isolated_vertices_keep_their_ids() {
        // Vertex 2 has no neighbours (empty line).
        let text = "3 1\n3\n\n1\n";
        let g = read_metis_from(Cursor::new(text)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_text("/definitely/not/here.txt"),
            Err(GraphError::Io(_))
        ));
    }
}
