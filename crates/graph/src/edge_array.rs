//! The edge-array input format (paper §III-A).
//!
//! An [`EdgeArray`] is an array of structures, each holding the two endpoint
//! identifiers of a directed arc. The paper's invariants:
//!
//! * no self-loops and no multi-edges;
//! * every undirected edge appears exactly twice, once in each direction;
//! * the arcs are in **no particular order** (preprocessing sorts them).
//!
//! [`EdgeSoA`] is the same data "unzipped" into a structure of arrays — the
//! layout the counting kernel prefers (§III-D1, 13–32 % faster).

use crate::{GraphError, VertexId};

/// A directed arc `u -> v`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Edge {
    pub u: VertexId,
    pub v: VertexId,
}

impl Edge {
    #[inline]
    pub fn new(u: VertexId, v: VertexId) -> Self {
        Edge { u, v }
    }

    /// The reverse arc `v -> u`.
    #[inline]
    pub fn reversed(self) -> Self {
        Edge {
            u: self.v,
            v: self.u,
        }
    }

    /// Pack into a 64-bit key with the **first** vertex in the high half, so
    /// `u64` order equals `(u, v)` lexicographic order. This is the ordering
    /// preprocessing step 3 wants.
    #[inline]
    pub fn as_u64_first_major(self) -> u64 {
        ((self.u as u64) << 32) | self.v as u64
    }

    /// Pack with the **second** vertex in the high half. On a little-endian
    /// machine, reinterpreting the in-memory pair `{u, v}` as one `u64` puts
    /// `v` in the high bits, so sorting those keys orders edges by the second
    /// vertex with ties broken by the first — the "endianness" effect of
    /// §III-D2. The paper accepts this slightly different (but symmetric, and
    /// therefore equally usable) ordering because 64-bit radix sort is ~5x
    /// faster than comparison-sorting pairs.
    #[inline]
    pub fn as_u64_second_major(self) -> u64 {
        ((self.v as u64) << 32) | self.u as u64
    }

    /// Unpack a key produced by [`Edge::as_u64_first_major`].
    #[inline]
    pub fn from_u64_first_major(key: u64) -> Self {
        Edge {
            u: (key >> 32) as u32,
            v: key as u32,
        }
    }
}

/// Array-of-structures edge array: the canonical input format.
#[derive(Clone, Default, Debug)]
pub struct EdgeArray {
    edges: Vec<Edge>,
}

impl EdgeArray {
    /// Wrap a raw arc list without validation. The caller asserts the paper's
    /// invariants hold; use [`EdgeArray::validate`] to check them.
    pub fn from_arcs_unchecked(edges: Vec<Edge>) -> Self {
        EdgeArray { edges }
    }

    /// Build a valid edge array from a list of **undirected** endpoint pairs.
    ///
    /// Self-loops are dropped and duplicate undirected edges are collapsed;
    /// every surviving edge is emitted in both directions. This is the
    /// "fast and simple single-pass" style conversion the paper assumes is
    /// available from upstream data sources.
    ///
    /// ```
    /// use tc_graph::EdgeArray;
    /// let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 0), (2, 2), (1, 2)]);
    /// assert_eq!(g.num_edges(), 2);   // duplicate collapsed, self-loop dropped
    /// assert_eq!(g.num_arcs(), 4);    // each edge stored in both directions
    /// assert!(g.validate().is_ok());
    /// ```
    pub fn from_undirected_pairs(pairs: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        let mut canon: Vec<u64> = pairs
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                ((lo as u64) << 32) | hi as u64
            })
            .collect();
        canon.sort_unstable();
        canon.dedup();
        let mut edges = Vec::with_capacity(canon.len() * 2);
        for key in canon {
            let lo = (key >> 32) as u32;
            let hi = key as u32;
            edges.push(Edge::new(lo, hi));
            edges.push(Edge::new(hi, lo));
        }
        EdgeArray { edges }
    }

    /// Number of directed arcs (`m` in the paper; twice the number of
    /// undirected edges for a valid edge array).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.edges.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Number of vertices, computed as `max id + 1` exactly like
    /// preprocessing step 2 (a max-reduction over both endpoints). An empty
    /// graph has zero vertices.
    pub fn num_nodes(&self) -> usize {
        self.edges
            .iter()
            .map(|e| e.u.max(e.v))
            .max()
            .map_or(0, |m| m as usize + 1)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    #[inline]
    pub fn arcs(&self) -> &[Edge] {
        &self.edges
    }

    #[inline]
    pub fn arcs_mut(&mut self) -> &mut [Edge] {
        &mut self.edges
    }

    pub fn into_arcs(self) -> Vec<Edge> {
        self.edges
    }

    /// Iterate over undirected edges, yielding each once with `u < v`.
    pub fn undirected_iter(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges.iter().filter(|e| e.u < e.v).map(|e| (e.u, e.v))
    }

    /// Check the paper's §III-A invariants: no self-loops, no duplicate arcs,
    /// every arc paired with its reverse.
    pub fn validate(&self) -> Result<(), GraphError> {
        for e in &self.edges {
            if e.u == e.v {
                return Err(GraphError::SelfLoop { vertex: e.u });
            }
        }
        let mut keys: Vec<u64> = self.edges.iter().map(|e| e.as_u64_first_major()).collect();
        keys.sort_unstable();
        for w in keys.windows(2) {
            if w[0] == w[1] {
                let e = Edge::from_u64_first_major(w[0]);
                return Err(GraphError::DuplicateEdge { u: e.u, v: e.v });
            }
        }
        // Every arc must have its reverse present: binary-search the sorted keys.
        for e in &self.edges {
            let rev = e.reversed().as_u64_first_major();
            if keys.binary_search(&rev).is_err() {
                return Err(GraphError::MissingReverse { u: e.u, v: e.v });
            }
        }
        Ok(())
    }

    /// Vertex degrees (out-degree in the doubled representation, which equals
    /// the undirected degree).
    pub fn degrees(&self) -> Vec<u32> {
        let n = self.num_nodes();
        let mut deg = vec![0u32; n];
        for e in &self.edges {
            deg[e.u as usize] += 1;
        }
        deg
    }

    /// Device-footprint of this array in bytes (two `u32` per arc), used by
    /// the capacity planning of §III-D6.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<Edge>()
    }

    /// Content digest of the graph: a 64-bit fingerprint over the arc
    /// multiset, independent of arc order (preprocessing sorts anyway, so
    /// two loads of the same graph in different arc orders are the same
    /// workload). Used by the serving layer to key its `PreparedGraph`
    /// cache.
    ///
    /// ```
    /// use tc_graph::EdgeArray;
    /// let a = EdgeArray::from_undirected_pairs([(0, 1), (1, 2)]);
    /// let b = EdgeArray::from_undirected_pairs([(1, 2), (0, 1)]);
    /// let c = EdgeArray::from_undirected_pairs([(0, 1), (1, 3)]);
    /// assert_eq!(a.digest(), b.digest());
    /// assert_ne!(a.digest(), c.digest());
    /// ```
    pub fn digest(&self) -> u64 {
        // Commutative combine (wrapping sum + xor) of a strong per-arc
        // mix (splitmix64), finalized with the arc count so the empty
        // graph and near-misses separate.
        let mut sum = 0u64;
        let mut xor = 0u64;
        for e in &self.edges {
            let h = splitmix64(e.as_u64_first_major());
            sum = sum.wrapping_add(h);
            xor ^= h.rotate_left(17);
        }
        splitmix64(sum ^ xor.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.edges.len() as u64)
    }

    /// Split into a structure of arrays (preprocessing step 7, "unzipping").
    pub fn unzip(&self) -> EdgeSoA {
        let mut src = Vec::with_capacity(self.edges.len());
        let mut dst = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            src.push(e.u);
            dst.push(e.v);
        }
        EdgeSoA { src, dst }
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash step.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FromIterator<Edge> for EdgeArray {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        EdgeArray {
            edges: iter.into_iter().collect(),
        }
    }
}

/// Structure-of-arrays edge layout (§III-B step 7). `src[i] -> dst[i]`.
#[derive(Clone, Default, Debug)]
pub struct EdgeSoA {
    pub src: Vec<VertexId>,
    pub dst: Vec<VertexId>,
}

impl EdgeSoA {
    #[inline]
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.src.len(), self.dst.len());
        self.src.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Re-interleave into an array of structures ("zip").
    pub fn zip(&self) -> EdgeArray {
        EdgeArray {
            edges: self
                .src
                .iter()
                .zip(&self.dst)
                .map(|(&u, &v)| Edge::new(u, v))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> EdgeArray {
        EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn from_undirected_pairs_doubles_edges() {
        let g = triangle();
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_nodes(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn from_undirected_pairs_drops_self_loops_and_duplicates() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 0), (0, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_nodes(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn num_nodes_is_max_id_plus_one() {
        let g = EdgeArray::from_undirected_pairs([(3, 9)]);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(EdgeArray::default().num_nodes(), 0);
    }

    #[test]
    fn validate_detects_self_loop() {
        let g = EdgeArray::from_arcs_unchecked(vec![Edge::new(1, 1)]);
        assert!(matches!(
            g.validate(),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
    }

    #[test]
    fn validate_detects_duplicate_arc() {
        let g =
            EdgeArray::from_arcs_unchecked(vec![Edge::new(0, 1), Edge::new(0, 1), Edge::new(1, 0)]);
        assert!(matches!(
            g.validate(),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
    }

    #[test]
    fn validate_detects_missing_reverse() {
        let g = EdgeArray::from_arcs_unchecked(vec![Edge::new(0, 1)]);
        assert!(matches!(
            g.validate(),
            Err(GraphError::MissingReverse { u: 0, v: 1 })
        ));
    }

    #[test]
    fn degrees_of_a_path() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2)]);
        assert_eq!(g.degrees(), vec![1, 2, 1]);
    }

    #[test]
    fn unzip_zip_roundtrip() {
        let g = triangle();
        let soa = g.unzip();
        assert_eq!(soa.len(), 6);
        let back = soa.zip();
        assert_eq!(back.arcs(), g.arcs());
    }

    #[test]
    fn u64_packing_roundtrip_and_order() {
        let e = Edge::new(5, 70000);
        assert_eq!(Edge::from_u64_first_major(e.as_u64_first_major()), e);
        // first-major key order == (u, v) lexicographic order
        let a = Edge::new(1, 9).as_u64_first_major();
        let b = Edge::new(2, 0).as_u64_first_major();
        assert!(a < b);
        // second-major key order sorts by v first
        let a = Edge::new(9, 1).as_u64_second_major();
        let b = Edge::new(0, 2).as_u64_second_major();
        assert!(a < b);
    }

    #[test]
    fn undirected_iter_yields_each_edge_once() {
        let g = triangle();
        let und: Vec<_> = g.undirected_iter().collect();
        assert_eq!(und.len(), 3);
        for (u, v) in und {
            assert!(u < v);
        }
    }

    #[test]
    fn bytes_counts_eight_per_arc() {
        assert_eq!(triangle().bytes(), 6 * 8);
    }

    #[test]
    fn digest_is_order_independent_and_content_sensitive() {
        let a = EdgeArray::from_arcs_unchecked(vec![
            Edge::new(0, 1),
            Edge::new(1, 0),
            Edge::new(1, 2),
            Edge::new(2, 1),
        ]);
        let b = EdgeArray::from_arcs_unchecked(vec![
            Edge::new(2, 1),
            Edge::new(1, 2),
            Edge::new(1, 0),
            Edge::new(0, 1),
        ]);
        assert_eq!(a.digest(), b.digest(), "arc order must not matter");
        let c = EdgeArray::from_undirected_pairs([(0, 1), (1, 3)]);
        assert_ne!(a.digest(), c.digest());
        assert_ne!(EdgeArray::default().digest(), a.digest());
        // Stable across calls.
        assert_eq!(a.digest(), a.digest());
    }
}
