//! Plain adjacency-list representation (`Vec<Vec<u32>>`).
//!
//! Kept primarily to reproduce the input-format discussion of §III-A: an
//! adjacency list converts to an edge array with a cheap single pass, while
//! the reverse direction requires sorting/grouping and is markedly more
//! expensive. The CPU baseline optimized for adjacency-list input also runs
//! on this type.

use crate::{Edge, EdgeArray, VertexId};

/// Adjacency list; `lists[v]` holds the neighbours of `v` (not necessarily
/// sorted — use [`AdjacencyList::sort_lists`]).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct AdjacencyList {
    lists: Vec<Vec<VertexId>>,
}

impl AdjacencyList {
    pub fn new(lists: Vec<Vec<VertexId>>) -> Self {
        AdjacencyList { lists }
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.lists.len()
    }

    pub fn num_arcs(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.lists[v as usize]
    }

    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.lists[v as usize].len() as u32
    }

    /// Sort every neighbour list ascending.
    pub fn sort_lists(&mut self) {
        for l in &mut self.lists {
            l.sort_unstable();
        }
    }

    /// Single-pass conversion to an edge array (the cheap direction of
    /// §III-A).
    pub fn to_edge_array(&self) -> EdgeArray {
        let mut arcs = Vec::with_capacity(self.num_arcs());
        for (u, list) in self.lists.iter().enumerate() {
            for &v in list {
                arcs.push(Edge::new(u as u32, v));
            }
        }
        EdgeArray::from_arcs_unchecked(arcs)
    }

    /// Grouping conversion from an edge array (the expensive direction of
    /// §III-A — requires a scatter over all arcs plus per-list sorts).
    pub fn from_edge_array(g: &EdgeArray) -> Self {
        let n = g.num_nodes();
        let deg = g.degrees();
        let mut lists: Vec<Vec<VertexId>> = (0..n)
            .map(|v| Vec::with_capacity(deg[v] as usize))
            .collect();
        for e in g.arcs() {
            lists[e.u as usize].push(e.v);
        }
        let mut adj = AdjacencyList { lists };
        adj.sort_lists();
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_array() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let adj = AdjacencyList::from_edge_array(&g);
        assert_eq!(adj.num_nodes(), 4);
        assert_eq!(adj.num_arcs(), 8);
        assert_eq!(adj.neighbors(2), &[0, 1, 3]);
        let back = adj.to_edge_array();
        back.validate().unwrap();
        assert_eq!(back.num_arcs(), g.num_arcs());
    }

    #[test]
    fn sort_lists_sorts() {
        let mut adj = AdjacencyList::new(vec![vec![3, 1, 2], vec![]]);
        adj.sort_lists();
        assert_eq!(adj.neighbors(0), &[1, 2, 3]);
        assert_eq!(adj.degree(1), 0);
    }

    #[test]
    fn empty() {
        let adj = AdjacencyList::default();
        assert_eq!(adj.num_nodes(), 0);
        assert_eq!(adj.num_arcs(), 0);
        assert!(adj.to_edge_array().is_empty());
    }
}
