//! Compressed sparse row representation: the paper's *node array* over a
//! sorted edge array (§III-B steps 3–4).
//!
//! After preprocessing step 3, the edge array is sorted by first endpoint
//! (ties by second), which makes it "a concatenated adjacency list of
//! subsequent vertices, each list sorted". The node array maps vertex `i` to
//! the index of its first arc; [`Csr`] bundles both.

use crate::{Edge, EdgeArray, GraphError, VertexId};

/// CSR graph: `offsets.len() == num_nodes + 1`, the neighbours of `v` are
/// `targets[offsets[v] .. offsets[v + 1]]`, each neighbour list sorted
/// ascending.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Build from an edge array (need not be valid/doubled; any arc list
    /// works — each arc `u -> v` contributes `v` to `u`'s list).
    ///
    /// Runs the counting-sort style construction: degree histogram, exclusive
    /// scan, scatter, then per-list sort.
    pub fn from_edge_array(g: &EdgeArray) -> Result<Self, GraphError> {
        let n = g.num_nodes();
        let m = g.num_arcs();
        if m > u32::MAX as usize {
            return Err(GraphError::TooLarge {
                what: "arc",
                count: m as u64,
            });
        }
        let mut offsets = vec![0u32; n + 1];
        for e in g.arcs() {
            offsets[e.u as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; m];
        for e in g.arcs() {
            let slot = cursor[e.u as usize];
            targets[slot as usize] = e.v;
            cursor[e.u as usize] += 1;
        }
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        Ok(Csr { offsets, targets })
    }

    /// Wrap prebuilt arrays. `offsets` must be monotone with
    /// `offsets\[0\] == 0` and `*offsets.last() == targets.len()`; each
    /// neighbour list must already be sorted.
    pub fn from_parts(offsets: Vec<u32>, targets: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Csr { offsets, targets }
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Neighbours of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`: computed "by subtracting two subsequent cells of the
    /// node array" (§III-B step 5).
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    pub fn max_degree(&self) -> u32 {
        (0..self.num_nodes() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterate `(u, v)` over all arcs in CSR order.
    pub fn arcs(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_nodes() as u32)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| Edge::new(u, v)))
    }

    /// Flatten back to an edge array in sorted order — the cheap
    /// adjacency-list → edge-array direction of §III-A.
    pub fn to_edge_array(&self) -> EdgeArray {
        EdgeArray::from_arcs_unchecked(self.arcs().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeArray;

    fn diamond() -> EdgeArray {
        // 0-1, 0-2, 1-2, 1-3, 2-3 : two triangles sharing edge 1-2
        EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_roundtrip_from_edge_array() {
        let g = diamond();
        let csr = Csr::from_edge_array(&g).unwrap();
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_arcs(), 10);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[0, 2, 3]);
        assert_eq!(csr.neighbors(2), &[0, 1, 3]);
        assert_eq!(csr.neighbors(3), &[1, 2]);
        assert_eq!(csr.degree(1), 3);
        assert_eq!(csr.max_degree(), 3);
    }

    #[test]
    fn neighbor_lists_are_sorted_even_from_shuffled_input() {
        let mut arcs = diamond().into_arcs();
        arcs.reverse();
        let csr = Csr::from_edge_array(&EdgeArray::from_arcs_unchecked(arcs)).unwrap();
        for v in 0..csr.num_nodes() as u32 {
            let nb = csr.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn isolated_trailing_vertices_absent() {
        // num_nodes comes from max id + 1; vertex 5 exists, 4 is isolated.
        let g = EdgeArray::from_undirected_pairs([(0, 5)]);
        let csr = Csr::from_edge_array(&g).unwrap();
        assert_eq!(csr.num_nodes(), 6);
        assert_eq!(csr.degree(4), 0);
        assert!(csr.neighbors(4).is_empty());
        assert_eq!(csr.neighbors(5), &[0]);
    }

    #[test]
    fn to_edge_array_is_sorted_and_equivalent() {
        let g = diamond();
        let csr = Csr::from_edge_array(&g).unwrap();
        let ea = csr.to_edge_array();
        ea.validate().unwrap();
        let keys: Vec<u64> = ea.arcs().iter().map(|e| e.as_u64_first_major()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ea.num_arcs(), g.num_arcs());
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edge_array(&EdgeArray::default()).unwrap();
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_arcs(), 0);
        assert_eq!(csr.max_degree(), 0);
    }

    #[test]
    fn arcs_iterator_matches_neighbor_lists() {
        let csr = Csr::from_edge_array(&diamond()).unwrap();
        let arcs: Vec<Edge> = csr.arcs().collect();
        assert_eq!(arcs.len(), 10);
        assert_eq!(arcs[0], Edge::new(0, 1));
        assert_eq!(arcs[9], Edge::new(3, 2));
    }
}
