//! Cross-backend equivalence: every algorithm in the repository must agree
//! on every graph — classic fixtures with closed-form counts, the full
//! smoke-scale evaluation suite, and the brute-force reference.

use triangles::core::count::{Backend, CountRequest, GpuOptions};
use triangles::core::verify::count_brute_force;
use triangles::core::{CoreError, EdgeLayout, LoopVariant};
use triangles::gen::suite::{full_suite, Scale};
use triangles::gen::{classic, watts_strogatz::WattsStrogatz, Seed};
use triangles::graph::EdgeArray;
use triangles::simt::DeviceConfig;

/// The [`CountRequest`] front door, narrowed to the bare count.
fn count(g: &EdgeArray, backend: Backend) -> Result<u64, CoreError> {
    CountRequest::new(backend).run(g).map(|r| r.triangles)
}

fn all_backends() -> Vec<Backend> {
    vec![
        Backend::CpuForward,
        Backend::CpuEdgeIterator,
        Backend::CpuNodeIterator,
        Backend::CpuForwardHashed,
        Backend::CpuParallel,
        Backend::CpuHybrid { threshold: None },
        Backend::CpuHybrid { threshold: Some(4) },
        Backend::Gpu(GpuOptions::new(
            DeviceConfig::gtx_980().with_unlimited_memory(),
        )),
        Backend::GpuSplit {
            options: GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory()),
            parts: 3,
        },
        Backend::Gpu(GpuOptions::new(
            DeviceConfig::tesla_c2050().with_unlimited_memory(),
        )),
        Backend::Gpu(GpuOptions::new(
            DeviceConfig::nvs_5200m().with_unlimited_memory(),
        )),
        Backend::MultiGpu {
            options: GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory()),
            devices: 4,
        },
        Backend::Gpu(GpuOptions::balanced_hash(
            DeviceConfig::gtx_980().with_unlimited_memory(),
        )),
        Backend::Gpu({
            let mut o = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
            o.reorder = true;
            o
        }),
        Backend::Gpu({
            let mut o = GpuOptions::balanced_hash(DeviceConfig::gtx_980().with_unlimited_memory());
            o.reorder = true;
            o
        }),
        Backend::MultiGpu {
            options: {
                let mut o =
                    GpuOptions::balanced(DeviceConfig::tesla_c2050().with_unlimited_memory());
                o.reorder = true;
                o
            },
            devices: 2,
        },
    ]
}

fn assert_all_agree(g: &EdgeArray, expected: u64, context: &str) {
    for backend in all_backends() {
        let label = backend.label();
        let got = count(g, backend).unwrap_or_else(|e| panic!("{context}/{label}: {e}"));
        assert_eq!(got, expected, "{context}: backend {label} disagrees");
    }
}

#[test]
fn closed_form_fixtures() {
    assert_all_agree(
        &classic::complete(10),
        classic::complete_triangles(10),
        "K10",
    );
    assert_all_agree(&classic::complete_bipartite(6, 7), 0, "K6,7");
    assert_all_agree(&classic::cycle(12), 0, "C12");
    assert_all_agree(&classic::cycle(3), 1, "C3");
    assert_all_agree(&classic::star(20), 0, "S20");
    assert_all_agree(&classic::wheel(9), classic::wheel_triangles(9), "W9");
    assert_all_agree(&classic::grid(5, 7), 0, "grid5x7");
    assert_all_agree(&classic::triangle_soup(17), 17, "17 disjoint triangles");
    assert_all_agree(&classic::path(9), 0, "P9");
}

#[test]
fn watts_strogatz_lattice_closed_form() {
    let ws = WattsStrogatz::new(120, 8, 0.0);
    let g = ws.generate(Seed(5));
    assert_all_agree(&g, ws.lattice_triangles(), "WS lattice k=8");
}

#[test]
fn suite_graphs_agree_with_brute_force_where_small() {
    for row in full_suite(Scale::Smoke) {
        let expected = count(&row.graph, Backend::CpuForward).unwrap();
        if row.graph.num_nodes() <= 1200 {
            assert_eq!(
                expected,
                count_brute_force(&row.graph),
                "{}: forward vs brute force",
                row.name
            );
        }
        assert_all_agree(&row.graph, expected, &row.name);
    }
}

#[test]
fn every_gpu_option_combination_agrees() {
    let g = full_suite(Scale::Smoke)
        .into_iter()
        .find(|r| r.name == "citeseer")
        .expect("suite has citeseer")
        .graph;
    let expected = count(&g, Backend::CpuForward).unwrap();
    for layout in [EdgeLayout::SoA, EdgeLayout::AoS] {
        for variant in [LoopVariant::FinalReadAvoiding, LoopVariant::Preliminary] {
            for cached in [true, false] {
                for split in [1u32, 2] {
                    let mut opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
                    opts.layout = layout;
                    opts.kernel = variant;
                    opts.use_texture_cache = cached;
                    opts.warp_split = split;
                    let got = count(&g, Backend::Gpu(opts)).unwrap();
                    assert_eq!(
                        got, expected,
                        "layout={layout:?} variant={variant:?} cached={cached} split={split}"
                    );
                }
            }
        }
    }
}

#[test]
fn empty_and_tiny_graphs() {
    assert_all_agree(&EdgeArray::default(), 0, "empty");
    assert_all_agree(
        &EdgeArray::from_undirected_pairs([(0, 1)]),
        0,
        "single edge",
    );
    assert_all_agree(
        &EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0)]),
        1,
        "single triangle",
    );
}
