//! End-to-end tests of the `tcount` CLI binary.

use std::path::PathBuf;
use std::process::Command;

use triangles::gen::{erdos_renyi, Seed};
use triangles::graph::io;

fn tcount_bin() -> PathBuf {
    // Cargo puts integration-test binaries under target/<profile>/deps.
    let mut path = std::env::current_exe().unwrap();
    path.pop(); // deps/
    path.pop(); // <profile>/
    path.push(format!("tcount{}", std::env::consts::EXE_SUFFIX));
    path
}

fn fixture_file() -> (PathBuf, u64) {
    let g = erdos_renyi::gnm(100, 600, Seed(42));
    let expected = triangles::core::CountRequest::new(triangles::core::Backend::CpuForward)
        .run(&g)
        .unwrap()
        .triangles;
    let dir = std::env::temp_dir().join("tcount_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fixture.txt");
    io::write_text(&g, &path).unwrap();
    (path, expected)
}

#[test]
fn counts_a_text_file() {
    let (path, expected) = fixture_file();
    let out = Command::new(tcount_bin())
        .arg(&path)
        .args(["--backend", "forward", "--validate"])
        .output()
        .expect("tcount must be built (cargo test builds workspace bins)");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!("triangles: {expected}")),
        "{stdout}"
    );
    assert!(stdout.contains("validation: ok"));
}

#[test]
fn gpu_backend_reports_profile() {
    let (path, expected) = fixture_file();
    let out = Command::new(tcount_bin())
        .arg(&path)
        .args(["--backend", "gtx980", "--clustering"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!("triangles: {expected}")),
        "{stdout}"
    );
    assert!(stdout.contains("tex hit"));
    assert!(stdout.contains("transitivity ratio"));
}

#[test]
fn trace_flag_writes_a_chrome_trace() {
    let (path, expected) = fixture_file();
    let trace = std::env::temp_dir()
        .join("tcount_cli_test")
        .join("trace.json");
    let out = Command::new(tcount_bin())
        .arg(&path)
        .args(["--backend", "gtx980", "--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(&format!("triangles: {expected}")));
    let content = std::fs::read_to_string(&trace).unwrap();
    assert!(content.contains("CountTriangles"));
    assert!(content.trim_end().ends_with(']'));

    // Trace with a CPU backend is rejected.
    let out = Command::new(tcount_bin())
        .arg(&path)
        .args(["--backend", "forward", "--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn multi_gpu_trace_names_every_device() {
    let (path, expected) = fixture_file();
    let trace = std::env::temp_dir()
        .join("tcount_cli_test")
        .join("multi_trace.json");
    let out = Command::new(tcount_bin())
        .arg(&path)
        .args(["--backend", "4xc2050", "--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(&format!("triangles: {expected}")));
    let content = std::fs::read_to_string(&trace).unwrap();
    for dev in ["gpu0", "gpu1", "gpu2", "gpu3"] {
        assert!(content.contains(dev), "trace missing thread {dev}");
    }
    // Nested spans are present alongside leaf operations.
    assert!(content.contains("\"broadcast\""));
    assert!(content.contains("\"count-kernel\""));
}

#[test]
fn profile_flag_prints_phase_table_and_writes_json() {
    let (path, expected) = fixture_file();
    let json = std::env::temp_dir()
        .join("tcount_cli_test")
        .join("profile.json");
    let out = Command::new(tcount_bin())
        .arg(&path)
        .args(["--backend", "gtx980", "--profile", json.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(&format!("triangles: {expected}")));
    // The eight preprocessing steps plus the counting kernel, each a row.
    for phase in [
        "1-copy-edges",
        "5-mark-backward",
        "8-node-array",
        "count-kernel",
        "total",
    ] {
        assert!(
            stdout.contains(phase),
            "missing profile row {phase}:\n{stdout}"
        );
    }
    for column in ["tex hit", "BW [GB/s]", "stall [cyc]", "occupancy"] {
        assert!(stdout.contains(column), "missing column {column}");
    }
    let report = std::fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"phases\""));
    assert!(report.contains("\"preprocess/3-sort-edges\""));
    assert_eq!(report.matches('{').count(), report.matches('}').count());

    // Print-only form: no FILE operand, table still printed.
    let out = Command::new(tcount_bin())
        .arg(&path)
        .args(["--backend", "gtx980", "--profile"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("count-kernel"));
    assert!(!stdout.contains("profile written"));

    // Profiling a CPU backend is rejected.
    let out = Command::new(tcount_bin())
        .arg(&path)
        .args(["--backend", "forward", "--profile"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = Command::new(tcount_bin()).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(tcount_bin())
        .args(["/nonexistent/file.txt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let (path, _) = fixture_file();
    let out = Command::new(tcount_bin())
        .arg(&path)
        .args(["--backend", "quantum"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
