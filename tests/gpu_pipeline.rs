//! End-to-end properties of the simulated GPU pipeline: determinism,
//! capacity-fallback equivalence, multi-GPU consistency, and the paper's
//! measurement-protocol details.

use triangles::core::count::GpuOptions;
use triangles::core::gpu::multi::run_multi_gpu;
use triangles::core::gpu::pipeline::run_gpu_pipeline;
use triangles::core::gpu::preprocess::{fallback_path_peak_bytes, full_path_peak_bytes};
use triangles::gen::suite::{full_suite, Scale};
use triangles::gen::{erdos_renyi, Seed};
use triangles::simt::{DeviceConfig, LaunchConfig};

#[test]
fn simulated_times_are_deterministic() {
    let g = erdos_renyi::gnm(400, 2_000, Seed(1));
    let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
    let a = run_gpu_pipeline(&g, &opts).unwrap();
    let b = run_gpu_pipeline(&g, &opts).unwrap();
    assert_eq!(a.triangles, b.triangles);
    assert_eq!(a.total_s, b.total_s, "simulated time must be bit-identical");
    assert_eq!(a.kernel.sm_cycles, b.kernel.sm_cycles);
    assert_eq!(a.kernel.dram_bytes, b.kernel.dram_bytes);
    assert_eq!(a.kernel.tex, b.kernel.tex);
}

#[test]
fn fallback_gives_identical_counts_and_orientation() {
    let g = erdos_renyi::gnm(300, 3_000, Seed(2));
    let roomy = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
    let full = run_gpu_pipeline(&g, &roomy).unwrap();
    assert!(!full.used_cpu_fallback);

    let launch = LaunchConfig::new(2, 64);
    let reserve = launch.active_threads(32) as u64 * 8;
    let node = (g.num_nodes() as u64 + 1) * 4;
    let window = (full_path_peak_bytes(&g) + fallback_path_peak_bytes(&g)) / 2 + reserve + node;
    let mut tight = GpuOptions::new(DeviceConfig::gtx_980().with_memory_capacity(window));
    tight.launch = Some(launch);
    let fb = run_gpu_pipeline(&g, &tight).unwrap();
    assert!(fb.used_cpu_fallback);
    assert_eq!(fb.triangles, full.triangles);
    assert_eq!(fb.m_oriented, full.m_oriented);
    assert_eq!(fb.n, full.n);
    // The fallback path's device footprint is roughly half.
    assert!(fb.peak_device_bytes < full.peak_device_bytes);
}

#[test]
fn device_count_never_changes_the_answer() {
    let suite = full_suite(Scale::Smoke);
    let opts = GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory());
    for row in suite.iter().take(4) {
        let counts: Vec<u64> = [1usize, 2, 3, 4]
            .iter()
            .map(|&d| run_multi_gpu(&row.graph, &opts, d).unwrap().triangles)
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{}: {counts:?}",
            row.name
        );
    }
}

#[test]
fn preprocessing_time_is_independent_of_device_count() {
    let g = erdos_renyi::gnm(500, 4_000, Seed(3));
    let opts = GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory());
    let one = run_multi_gpu(&g, &opts, 1).unwrap();
    let four = run_multi_gpu(&g, &opts, 4).unwrap();
    assert_eq!(one.preprocess_s, four.preprocess_s);
}

#[test]
fn phase_breakdown_adds_up() {
    let g = erdos_renyi::gnm(300, 2_500, Seed(4));
    let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
    let r = run_gpu_pipeline(&g, &opts).unwrap();
    assert!(r.preprocess_s > 0.0);
    assert!(r.count_s > 0.0);
    let sum = r.preprocess_s + r.count_s;
    assert!(
        (sum - r.total_s).abs() < 1e-12 * r.total_s.max(1.0),
        "{sum} vs {}",
        r.total_s
    );
    assert!((0.0..=1.0).contains(&r.preprocess_fraction));
}

#[test]
fn reports_are_populated() {
    let g = erdos_renyi::gnm(200, 1_500, Seed(5));
    let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
    let r = run_gpu_pipeline(&g, &opts).unwrap();
    assert_eq!(r.m_oriented, g.num_edges());
    assert_eq!(r.n, g.num_nodes());
    assert!(r.kernel.lane_steps > 0);
    assert!(r.kernel.tex.accesses > 0);
    assert!(r.peak_device_bytes > 0);
    assert!(r.kernel.achieved_bandwidth_gbs >= 0.0);
}

#[test]
fn graph_too_large_even_for_fallback_errors_cleanly() {
    let g = erdos_renyi::gnm(300, 3_000, Seed(6));
    let opts = GpuOptions::new(DeviceConfig::gtx_980().with_memory_capacity(1024));
    match run_gpu_pipeline(&g, &opts) {
        Err(e) => match e.root() {
            triangles::core::CoreError::GraphTooLargeForDevice {
                required_bytes,
                capacity_bytes,
            } => {
                assert!(required_bytes > capacity_bytes);
                // The context annotation names the device and phase.
                let msg = e.to_string();
                assert!(msg.contains("GTX 980"), "{msg}");
                assert!(msg.contains("preprocess"), "{msg}");
            }
            other => panic!("expected GraphTooLargeForDevice, got {other:?}"),
        },
        other => panic!("expected GraphTooLargeForDevice, got {other:?}"),
    }
}

#[test]
fn smaller_devices_simulate_slower() {
    let g = erdos_renyi::gnm(600, 6_000, Seed(7));
    let gtx = run_gpu_pipeline(
        &g,
        &GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory()),
    )
    .unwrap();
    let c2050 = run_gpu_pipeline(
        &g,
        &GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory()),
    )
    .unwrap();
    let nvs = run_gpu_pipeline(
        &g,
        &GpuOptions::new(DeviceConfig::nvs_5200m().with_unlimited_memory()),
    )
    .unwrap();
    assert!(gtx.total_s < c2050.total_s, "GTX 980 must beat the C2050");
    assert!(
        c2050.total_s < nvs.total_s,
        "C2050 must beat the laptop part"
    );
}
