//! The compute-sanitizer layer must be three things at once: **clean** on
//! every legitimate run (the whole evaluation suite, on every device
//! preset, under both the paper's schedule and the balanced one),
//! **deterministic** when it does fire (the seeded-bug reports are
//! byte-identical run to run), and a **pure observer** (Check mode changes
//! no modeled quantity, and Off leaves the golden numbers untouched).

use triangles::core::count::{Backend, CountRequest};
use triangles::core::cpu::count_forward;
use triangles::gen::suite::{full_suite, Scale};
use triangles::graph::EdgeArray;
use triangles::simt::sanitizer::selftest;
use triangles::simt::{FindingKind, SanitizerMode};

fn sanitized_run(g: &EdgeArray, token: &str) -> triangles::core::TriangleCount {
    let backend: Backend = token.parse().unwrap_or_else(|e| panic!("{token}: {e}"));
    CountRequest::new(backend)
        .run(g)
        .unwrap_or_else(|e| panic!("{token}: {e}"))
}

#[test]
fn whole_suite_is_clean_on_every_preset_and_schedule() {
    let suite = full_suite(Scale::Smoke);
    for row in &suite {
        let want = count_forward(&row.graph).unwrap();
        for device in ["nvs5200m", "c2050", "gtx980"] {
            for schedule in ["", "/balanced"] {
                let token = format!("{device}{schedule}/sanitize");
                let result = sanitized_run(&row.graph, &token);
                assert_eq!(result.triangles, want, "{} on {token}", row.name);
                let report = result
                    .sanitizer
                    .as_ref()
                    .expect("sanitized backends attach a report");
                assert_eq!(report.mode, SanitizerMode::Check);
                assert!(
                    report.is_clean(),
                    "{} on {token} is not clean:\n{}",
                    row.name,
                    report.to_json()
                );
            }
        }
    }
}

#[test]
fn multi_gpu_and_split_backends_are_clean_and_report() {
    let suite = full_suite(Scale::Smoke);
    let row = &suite[3]; // citeseer: triangle-dense, exercises heavy bins
    let want = count_forward(&row.graph).unwrap();
    for token in [
        "2xc2050/sanitize",
        "4xgtx980/balanced/sanitize",
        "gtx980/split:3/sanitize",
    ] {
        let result = sanitized_run(&row.graph, token);
        assert_eq!(result.triangles, want, "{token}");
        let report = result.sanitizer.as_ref().expect("report present");
        assert!(report.is_clean(), "{token}:\n{}", report.to_json());
    }
}

/// The hash-intersection heavy bin must be sanitizer-clean while it is
/// actually exercising the shared-memory table (the smoke suite's tails
/// are too thin for the tuner, so this uses a clique — every edge's
/// chunk-scan work is far above the hash threshold).
#[test]
fn hash_strategy_runs_clean_under_the_sanitizer() {
    use triangles::core::count::GpuOptions;
    use triangles::core::gpu::prepared::PreparedGraph;
    use triangles::simt::DeviceConfig;

    let n = 80u32;
    let mut pairs = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            pairs.push((u, v));
        }
    }
    let g = EdgeArray::from_undirected_pairs(pairs);
    let want = count_forward(&g).unwrap();

    // The tuner must actually give this graph a hash bin — otherwise the
    // sanitized runs below wouldn't exercise the hash kernel at all.
    let opts = GpuOptions::balanced_hash(DeviceConfig::gtx_980().with_unlimited_memory());
    let prepared = PreparedGraph::prepare(&g, &opts).unwrap();
    assert!(
        prepared
            .bin_plan()
            .is_some_and(|p| p.occupied().any(|b| b.hash)),
        "clique must earn a hash bin"
    );
    prepared.release().unwrap();

    for token in [
        "gtx980/balanced+hash/sanitize",
        "gtx980/balanced+hash/reorder/sanitize",
        "2xc2050/balanced+hash/sanitize",
    ] {
        let result = sanitized_run(&g, token);
        assert_eq!(result.triangles, want, "{token}");
        let report = result.sanitizer.as_ref().expect("report present");
        assert_eq!(report.mode, SanitizerMode::Check, "{token}");
        assert!(report.is_clean(), "{token}:\n{}", report.to_json());
    }
}

#[test]
fn seeded_bugs_are_detected_with_byte_identical_reports() {
    let first = selftest::run();
    assert!(
        selftest::all_detected(&first),
        "a seeded bug went undetected:\n{}",
        selftest::to_json(&first)
    );
    let second = selftest::run();
    assert_eq!(
        selftest::to_json(&first),
        selftest::to_json(&second),
        "seeded-bug reports must be deterministic"
    );
}

#[test]
fn check_mode_is_a_pure_observer_of_modeled_perf() {
    let suite = full_suite(Scale::Smoke);
    for row in suite.iter().take(4) {
        let plain = sanitized_run(&row.graph, "gtx980");
        let checked = sanitized_run(&row.graph, "gtx980/sanitize");
        assert!(plain.sanitizer.is_none());
        assert_eq!(plain.triangles, checked.triangles, "{}", row.name);
        assert_eq!(
            plain.seconds.to_bits(),
            checked.seconds.to_bits(),
            "{}: Check mode changed the modeled wall time",
            row.name
        );
        let (p, c) = (plain.gpu.unwrap(), checked.gpu.unwrap());
        assert_eq!(p.kernel, c.kernel, "{}", row.name);
        assert_eq!(p.preprocess_s.to_bits(), c.preprocess_s.to_bits());
        assert_eq!(p.peak_device_bytes, c.peak_device_bytes);
    }
}

#[test]
fn paranoid_mode_flags_only_guard_reads_on_legitimate_kernels() {
    // Paranoid additionally reports reads in the allocation guard window.
    // The paper's kernels do over-read (that is why the arena pads), so
    // Paranoid may fire — but only ever with `GuardRead`, and the count
    // must be unaffected.
    let suite = full_suite(Scale::Smoke);
    let row = &suite[0];
    let want = count_forward(&row.graph).unwrap();
    let result = sanitized_run(&row.graph, "gtx980/sanitize:paranoid");
    assert_eq!(result.triangles, want);
    let report = result.sanitizer.as_ref().expect("report present");
    assert_eq!(report.mode, SanitizerMode::Paranoid);
    for finding in &report.findings {
        assert_eq!(
            finding.kind,
            FindingKind::GuardRead,
            "unexpected paranoid finding:\n{}",
            report.to_json()
        );
    }
}
