//! Golden modeled-performance regression gate. The simulator is fully
//! deterministic, so the counting kernel's cycle count, transaction count,
//! and cache counters are exact functions of (graph, device, schedule) —
//! any drift is a real modeled-perf change and must be deliberate.
//!
//! On mismatch, rerun with `TC_BLESS=1` to regenerate the snapshot, then
//! review the diff like any other code change:
//!
//! ```text
//! TC_BLESS=1 cargo test --release --test modeled_perf_golden
//! ```

use std::fmt::Write as _;

use triangles::core::count::GpuOptions;
use triangles::core::gpu::pipeline::run_gpu_pipeline;
use triangles::core::KernelSchedule;
use triangles::gen::suite::{full_suite, Scale};
use triangles::simt::DeviceConfig;

const GOLDEN_PATH: &str = "tests/golden/modeled_perf.txt";

/// The snapshot matrix: skewed + uniform smoke graphs × both measured
/// device presets × both schedules. Small enough to run in seconds, broad
/// enough that a change to coalescing, caching, binning, or either
/// counting kernel moves at least one row.
const GRAPHS: [&str; 4] = [
    "internet-topology",
    "kronecker-10",
    "barabasi-albert",
    "watts-strogatz",
];

fn devices() -> [(&'static str, DeviceConfig); 2] {
    [
        ("gtx980", DeviceConfig::gtx_980()),
        ("c2050", DeviceConfig::tesla_c2050()),
    ]
}

/// (token, schedule, reorder) variants. `balanced+hash` degrades to the
/// plain balanced plan on thin-tailed smoke graphs — identical rows there
/// are the graceful-degradation guarantee, not a snapshot bug.
fn variants() -> [(&'static str, KernelSchedule, bool); 4] {
    [
        ("tpe", KernelSchedule::ThreadPerEdge, false),
        ("balanced", KernelSchedule::Balanced, false),
        ("balanced+hash", KernelSchedule::BalancedHash, false),
        ("tpe/reorder", KernelSchedule::ThreadPerEdge, true),
    ]
}

fn snapshot() -> String {
    let suite = full_suite(Scale::Smoke);
    let mut out = String::from(
        "# graph device schedule sm_cycles transactions tex_hits/accesses l2_hits/accesses\n",
    );
    for name in GRAPHS {
        let row = suite
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("{name} missing from the smoke suite"));
        for (dev_tok, device) in devices() {
            for (sched_tok, schedule, reorder) in variants() {
                let mut opts = GpuOptions::new(device.clone().with_unlimited_memory());
                opts.schedule = schedule;
                opts.reorder = reorder;
                let report = run_gpu_pipeline(&row.graph, &opts)
                    .unwrap_or_else(|e| panic!("{name}/{dev_tok}/{sched_tok}: {e}"));
                let k = &report.kernel;
                writeln!(
                    out,
                    "{name} {dev_tok} {sched_tok} {} {} {}/{} {}/{}",
                    k.sm_cycles,
                    k.transactions,
                    k.tex.hits,
                    k.tex.accesses,
                    k.l2.hits,
                    k.l2.accesses,
                )
                .unwrap();
            }
        }
    }
    out
}

#[test]
fn modeled_perf_matches_the_golden_snapshot() {
    let got = snapshot();
    if std::env::var_os("TC_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden snapshot");
        eprintln!("blessed {GOLDEN_PATH}");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("{GOLDEN_PATH}: {e} (run with TC_BLESS=1 to create it)"));
    if got != want {
        let diff: Vec<String> = want
            .lines()
            .zip(got.lines())
            .filter(|(w, g)| w != g)
            .map(|(w, g)| format!("  -{w}\n  +{g}"))
            .collect();
        panic!(
            "modeled perf drifted from {GOLDEN_PATH} — if intentional, rerun \
             with TC_BLESS=1 and commit the new snapshot.\n{}",
            diff.join("\n")
        );
    }
}
