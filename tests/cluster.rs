//! Cluster-sharding exactness and determinism.
//!
//! The sharded cluster engine orients once on the host and partitions the
//! oriented arcs, so *every* topology × partition × schedule cell must
//! reproduce the single-device count byte-identically — not "close", but
//! `==` on `u64`. These tests sweep the full smoke suite across the
//! topology ladder under all three kernel schedules, then pin down the
//! engine-level behavior: distinct cache sessions per cluster token and
//! worker-count-independent batch artifacts.

use std::str::FromStr;
use std::sync::Arc;

use triangles::core::count::{Backend, CountRequest};
use triangles::engine::{Admission, Engine, EngineConfig, Job};
use triangles::gen::suite::{full_suite, Scale};

fn count(g: &triangles::graph::EdgeArray, token: &str) -> u64 {
    let backend = Backend::from_str(token).unwrap_or_else(|e| panic!("{token}: {e}"));
    CountRequest::new(backend)
        .run(g)
        .unwrap_or_else(|e| panic!("{token}: {e}"))
        .triangles
}

/// Every suite graph × topology × schedule agrees with the single-device
/// run under the same schedule. The 2D partition rides along on the 2x2
/// grid, where the owner × target split actually differs from 1D.
#[test]
fn suite_counts_are_byte_identical_to_single_device() {
    for item in full_suite(Scale::Smoke) {
        for sched in ["", "/balanced", "/balanced+hash"] {
            let want = count(&item.graph, &format!("gtx980{sched}"));
            for topo in ["1x1", "1x4", "2x2", "4x2", "2x2:2d"] {
                let token = format!("cluster:{topo}/gtx980{sched}");
                let got = count(&item.graph, &token);
                assert_eq!(got, want, "{}: {token} disagrees", item.name);
            }
        }
    }
}

/// Reordering relabels before orientation; the cluster path must apply it
/// the same way the single-device path does.
#[test]
fn reordered_cluster_counts_agree() {
    for item in full_suite(Scale::Smoke).into_iter().take(4) {
        let want = count(&item.graph, "gtx980/balanced/reorder");
        let got = count(&item.graph, "cluster:2x2/gtx980/balanced/reorder");
        assert_eq!(got, want, "{}", item.name);
    }
}

/// A clean graph under the sanitizer still counts correctly and reports
/// zero findings through the cluster path.
#[test]
fn sanitized_cluster_run_is_clean_and_exact() {
    let item = &full_suite(Scale::Smoke)[0];
    let backend = Backend::from_str("cluster:2x2/gtx980/sanitize").unwrap();
    let result = CountRequest::new(backend).run(&item.graph).unwrap();
    assert_eq!(result.triangles, count(&item.graph, "gtx980"));
    let report = result.sanitizer.expect("sanitize suffix produces a report");
    assert!(report.is_clean(), "{:?}", report.findings);
}

fn engine_config(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        queue_capacity: 8,
        cache_capacity: 4,
        admission: Admission::Block,
    }
}

/// Cluster tokens are part of the cache key: the same graph under
/// different topologies (or vs single-device) must get distinct prepared
/// sessions, never cross-serve counts.
#[test]
fn engine_cache_keys_separate_cluster_sessions() {
    let g = Arc::new(full_suite(Scale::Smoke)[0].graph.clone());
    let engine = Engine::new(engine_config(2));
    let tokens = [
        "gtx980",
        "cluster:1x1/gtx980",
        "cluster:2x2/gtx980",
        "cluster:2x2:2d/gtx980",
    ];
    let jobs: Vec<Job> = tokens
        .iter()
        .chain(tokens.iter()) // every token twice: second pass must hit
        .map(|t| Job::new(t.to_string(), Arc::clone(&g), t.parse().unwrap()))
        .collect();
    let report = engine.run_batch(jobs);
    assert_eq!(report.cache_misses, tokens.len());
    assert_eq!(report.cache_hits, tokens.len());
    assert_eq!(engine.cached_sessions(), tokens.len());
    let counts: Vec<u64> = report
        .jobs
        .iter()
        .map(|j| j.result.as_ref().unwrap().triangles)
        .collect();
    assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
    for (job, token) in report.jobs.iter().zip(tokens.iter().chain(tokens.iter())) {
        assert_eq!(&job.backend, token);
    }
}

/// The deterministic batch artifacts (report JSON, CI-mode metrics,
/// unified trace) are byte-identical across worker counts for a batch of
/// cluster jobs.
#[test]
fn cluster_batch_artifacts_are_worker_count_independent() {
    let suite = full_suite(Scale::Smoke);
    let graphs: Vec<Arc<triangles::graph::EdgeArray>> = suite
        .iter()
        .take(3)
        .map(|item| Arc::new(item.graph.clone()))
        .collect();
    let mk_jobs = || -> Vec<Job> {
        graphs
            .iter()
            .enumerate()
            .flat_map(|(i, g)| {
                ["cluster:2x2/gtx980/balanced", "cluster:1x4/gtx980"]
                    .into_iter()
                    .map(move |t| Job::new(format!("j{i}-{t}"), Arc::clone(g), t.parse().unwrap()))
            })
            .collect()
    };
    let mut artifacts = Vec::new();
    for workers in [1, 4] {
        let engine = Engine::new(engine_config(workers));
        let report = engine.run_batch(mk_jobs());
        artifacts.push((
            report.to_json(),
            report.metrics_json(false),
            report.trace_json(),
        ));
    }
    assert_eq!(artifacts[0].0, artifacts[1].0, "report JSON differs");
    assert_eq!(artifacts[0].1, artifacts[1].1, "CI metrics differ");
    assert_eq!(artifacts[0].2, artifacts[1].2, "unified trace differs");
    // The trace must surface the cluster stage vocabulary.
    assert!(artifacts[0].2.contains("shard-partition"));
    assert!(artifacts[0].2.contains("shard-count"));
    assert!(artifacts[0].2.contains("internode-merge"));
}
