//! The static kernel-launch verifier must be three things at once:
//! **honest** (every shipped kernel's declared footprint contains its
//! actual lane-access trace, across the whole evaluation suite, on every
//! device preset and schedule), a **pure observer** (verification is
//! host-side bookkeeping: modeled time and every modeled counter are
//! bit-identical with the verifier on), and a **safe substitute** (when a
//! launch is statically proven race-free, skipping the Check-mode dynamic
//! racecheck changes neither the sanitizer findings nor the modeled
//! numbers).

use triangles::core::count::{Backend, CountRequest};
use triangles::core::cpu::count_forward;
use triangles::gen::suite::{full_suite, Scale};
use triangles::graph::EdgeArray;
use triangles::simt::verifier::selftest;

fn run(g: &EdgeArray, token: &str) -> triangles::core::TriangleCount {
    let backend: Backend = token.parse().unwrap_or_else(|e| panic!("{token}: {e}"));
    CountRequest::new(backend)
        .run(g)
        .unwrap_or_else(|e| panic!("{token}: {e}"))
}

/// Every dynamic lane access must land inside the kernel's declared
/// static footprint. Paranoid mode cross-validates the sanitizer trace
/// against the contract, so a clean verifier report here *is* the
/// containment proof — for every suite graph, device preset, and
/// schedule we ship.
#[test]
fn whole_suite_traces_are_contained_in_declared_footprints() {
    let suite = full_suite(Scale::Smoke);
    for row in &suite {
        let want = count_forward(&row.graph).unwrap();
        for device in ["nvs5200m", "c2050", "gtx980"] {
            for schedule in ["", "/balanced", "/balanced+hash"] {
                let token = format!("{device}{schedule}/sanitize:paranoid/verify");
                let result = run(&row.graph, &token);
                assert_eq!(result.triangles, want, "{} on {token}", row.name);
                let report = result
                    .verifier
                    .as_ref()
                    .expect("verified backends attach a report");
                assert!(
                    report.is_clean(),
                    "{} on {token}: trace escaped the declared footprint:\n{}",
                    row.name,
                    report.to_json()
                );
                assert!(report.launches_checked > 0, "{} on {token}", row.name);
                // Every shipped kernel declares a contract and every
                // checked launch is proven race-free, so the proof count
                // matches the launch count exactly.
                assert_eq!(
                    report.launches_proven, report.launches_checked,
                    "{} on {token}: a launch went unproven",
                    row.name
                );
                // Paranoid never skips the dynamic sweep — it is the
                // cross-validation mode, not the fast path.
                assert_eq!(report.racechecks_skipped, 0, "{} on {token}", row.name);
            }
        }
    }
}

/// Check mode with the verifier on skips the dynamic racecheck for every
/// proven launch — and that skip must be invisible: byte-identical
/// sanitizer findings and bit-identical modeled perf versus the
/// unverified Check run.
#[test]
fn check_mode_skip_is_byte_identical_to_the_full_sweep() {
    let suite = full_suite(Scale::Smoke);
    for row in &suite {
        for token in ["gtx980/sanitize", "c2050/balanced/sanitize"] {
            let swept = run(&row.graph, token);
            let skipped = run(&row.graph, &format!("{token}/verify"));
            assert_eq!(swept.triangles, skipped.triangles, "{} {token}", row.name);
            let (a, b) = (
                swept.sanitizer.as_ref().unwrap(),
                skipped.sanitizer.as_ref().unwrap(),
            );
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "{} {token}: skipping proven racechecks changed the findings",
                row.name
            );
            assert_eq!(
                swept.seconds.to_bits(),
                skipped.seconds.to_bits(),
                "{} {token}: skipping proven racechecks changed modeled time",
                row.name
            );
            let vr = skipped.verifier.as_ref().unwrap();
            assert!(vr.is_clean(), "{}", vr.to_json());
            assert_eq!(
                vr.racechecks_skipped, vr.launches_proven,
                "{} {token}: a proven launch still paid the dynamic sweep",
                row.name
            );
            assert!(vr.racechecks_skipped > 0, "{} {token}", row.name);
        }
    }
}

/// The verifier alone (no sanitizer) is free: bit-identical modeled time
/// and identical per-kernel profile versus the plain run.
#[test]
fn verifier_charges_no_modeled_time() {
    let suite = full_suite(Scale::Smoke);
    for row in suite.iter().take(4) {
        let plain = run(&row.graph, "gtx980/balanced");
        let verified = run(&row.graph, "gtx980/balanced/verify");
        assert!(plain.verifier.is_none());
        assert_eq!(plain.triangles, verified.triangles, "{}", row.name);
        assert_eq!(
            plain.seconds.to_bits(),
            verified.seconds.to_bits(),
            "{}: the verifier changed the modeled wall time",
            row.name
        );
        let (p, v) = (plain.gpu.unwrap(), verified.gpu.unwrap());
        assert_eq!(p.kernel, v.kernel, "{}", row.name);
        assert_eq!(p.preprocess_s.to_bits(), v.preprocess_s.to_bits());
        assert_eq!(p.peak_device_bytes, v.peak_device_bytes);
        let report = verified.verifier.unwrap();
        assert!(report.is_clean(), "{}", report.to_json());
        // Analytic primitive passes (scan/sort/compact/…) are
        // interval-checked too, not just lockstep launches.
        assert!(report.passes_checked > 0, "{}", row.name);
    }
}

/// The hash-intersection kernel's contract covers its per-virtual-warp
/// scratch windows and shared-memory budget. A clique is the one smoke
/// graph dense enough for the tuner to actually engage the hash bin, so
/// this is the contract's only real exercise of those clauses.
#[test]
fn hash_strategy_contract_contains_its_scratch_traffic() {
    let n = 80u32;
    let mut pairs = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            pairs.push((u, v));
        }
    }
    let g = EdgeArray::from_undirected_pairs(pairs);
    let want = count_forward(&g).unwrap();
    for token in [
        "gtx980/balanced+hash/sanitize:paranoid/verify",
        "gtx980/balanced+hash/reorder/sanitize/verify",
    ] {
        let result = run(&g, token);
        assert_eq!(result.triangles, want, "{token}");
        let report = result.verifier.as_ref().expect("report present");
        assert!(report.is_clean(), "{token}:\n{}", report.to_json());
    }
}

/// Multi-device backends merge their per-device verifier reports in
/// device-index order; the merged report must be clean and account for
/// every shard's launches.
#[test]
fn multi_device_backends_merge_clean_reports() {
    let suite = full_suite(Scale::Smoke);
    let row = &suite[3]; // citeseer: triangle-dense, exercises heavy bins
    let want = count_forward(&row.graph).unwrap();
    let single = run(&row.graph, "gtx980/verify");
    let single_launches = single.verifier.as_ref().unwrap().launches_checked;
    for token in [
        "2xc2050/verify",
        "4xgtx980/balanced/verify",
        "gtx980/split:3/verify",
        "cluster:2x2/gtx980/verify",
    ] {
        let result = run(&row.graph, token);
        assert_eq!(result.triangles, want, "{token}");
        let report = result.verifier.as_ref().expect("report present");
        assert!(report.is_clean(), "{token}:\n{}", report.to_json());
        assert!(
            report.launches_checked >= single_launches,
            "{token}: merged report dropped shard launches"
        );
    }
}

/// Dishonest contracts must be caught, and caught deterministically: the
/// seeded-lie suite (narrow footprints, false disjointness claims,
/// understated shared budgets, undeclared writes) produces byte-identical
/// reports run to run, with every lie detected.
#[test]
fn seeded_lies_are_detected_with_byte_identical_reports() {
    let first = selftest::run();
    assert!(
        selftest::all_detected(&first),
        "a seeded contract lie went undetected:\n{}",
        selftest::to_json(&first)
    );
    let second = selftest::run();
    assert_eq!(
        selftest::to_json(&first),
        selftest::to_json(&second),
        "seeded-lie reports must be deterministic"
    );
}
