//! Integration tests for graph I/O and format conversions: counts survive
//! round trips through every on-disk and in-memory representation.

use triangles::core::count::{Backend, CountRequest};
use triangles::core::CoreError;
use triangles::gen::{erdos_renyi, Seed};
use triangles::graph::{io, AdjacencyList, Csr, EdgeArray};

fn fixture() -> EdgeArray {
    erdos_renyi::gnm(120, 600, Seed(9))
}

/// The [`CountRequest`] front door, narrowed to the bare count.
fn count(g: &EdgeArray, backend: Backend) -> Result<u64, CoreError> {
    CountRequest::new(backend).run(g).map(|r| r.triangles)
}

#[test]
fn count_survives_text_roundtrip() {
    let g = fixture();
    let expected = count(&g, Backend::CpuForward).unwrap();
    let dir = std::env::temp_dir().join("tc_integration_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.txt");
    io::write_text(&g, &path).unwrap();
    let h = io::read_text(&path).unwrap();
    assert_eq!(count(&h, Backend::CpuForward).unwrap(), expected);
    assert_eq!(h.num_edges(), g.num_edges());
}

#[test]
fn count_survives_binary_roundtrip() {
    let g = fixture();
    let expected = count(&g, Backend::CpuForward).unwrap();
    let dir = std::env::temp_dir().join("tc_integration_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.bin");
    io::write_binary(&g, &path).unwrap();
    let h = io::read_binary(&path).unwrap();
    h.validate().unwrap();
    assert_eq!(count(&h, Backend::CpuForward).unwrap(), expected);
}

#[test]
fn count_survives_representation_conversions() {
    let g = fixture();
    let expected = count(&g, Backend::CpuForward).unwrap();

    // edge array -> adjacency list -> edge array
    let adj = AdjacencyList::from_edge_array(&g);
    let back = adj.to_edge_array();
    assert_eq!(count(&back, Backend::CpuForward).unwrap(), expected);

    // edge array -> CSR -> edge array
    let csr = Csr::from_edge_array(&g).unwrap();
    let back = csr.to_edge_array();
    assert_eq!(count(&back, Backend::CpuForward).unwrap(), expected);
}

#[test]
fn malformed_inputs_produce_typed_errors() {
    use triangles::graph::GraphError;
    let dir = std::env::temp_dir().join("tc_integration_io");
    std::fs::create_dir_all(&dir).unwrap();

    let bad_text = dir.join("bad.txt");
    std::fs::write(&bad_text, "0 1\nnot numbers\n").unwrap();
    assert!(matches!(
        io::read_text(&bad_text),
        Err(GraphError::Parse { line: 2, .. })
    ));

    let bad_bin = dir.join("bad.bin");
    std::fs::write(&bad_bin, [1u8, 2, 3]).unwrap();
    assert!(matches!(
        io::read_binary(&bad_bin),
        Err(GraphError::TruncatedBinary { len: 3 })
    ));
}
