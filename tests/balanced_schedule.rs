//! The workload-balanced scheduler must be invisible in the results: for
//! every suite graph, device preset, and bin-threshold corner the balanced
//! count equals `cpu::forward`, a prepared session is byte-identical to the
//! one-shot path, and the engine's canonical backend token keeps
//! differently-scheduled jobs from ever sharing a cached session.

use std::sync::Arc;

use triangles::core::count::{Backend, CountRequest, GpuOptions};
use triangles::core::cpu::count_forward;
use triangles::core::gpu::pipeline::run_gpu_pipeline_profiled;
use triangles::core::gpu::schedule::KernelSchedule;
use triangles::core::PreparedGraph;
use triangles::engine::{parse_jobfile, Engine, EngineConfig, Job};
use triangles::gen::suite::{full_suite, Scale};
use triangles::simt::DeviceConfig;

/// The bin-threshold corners: the auto-tuner, an all-light plan (every
/// edge in the sorted merge bin), an all-heavy plan (every edge through
/// the warp-centric kernel), and a mixed split.
fn corner_schedules() -> [KernelSchedule; 4] {
    [
        KernelSchedule::Balanced,
        KernelSchedule::BalancedFixed {
            threshold: u32::MAX,
            width: 1,
        },
        KernelSchedule::BalancedFixed {
            threshold: 0,
            width: 8,
        },
        KernelSchedule::BalancedFixed {
            threshold: 8,
            width: 16,
        },
    ]
}

/// Exactness: balanced counts match `cpu::forward` on every suite graph ×
/// device preset × bin-threshold corner.
#[test]
fn balanced_matches_cpu_forward_on_every_suite_graph_preset_and_corner() {
    let devices = [
        DeviceConfig::gtx_980(),
        DeviceConfig::tesla_c2050(),
        DeviceConfig::nvs_5200m(),
    ];
    for row in full_suite(Scale::Smoke) {
        let want = count_forward(&row.graph).unwrap();
        for device in &devices {
            for schedule in corner_schedules() {
                let mut opts = GpuOptions::new(device.clone().with_unlimited_memory());
                opts.schedule = schedule;
                let context = format!("{}/{}/{}", row.name, device.name, schedule);
                let got = CountRequest::new(Backend::Gpu(opts))
                    .run(&row.graph)
                    .unwrap_or_else(|e| panic!("{context}: {e}"));
                assert_eq!(got.triangles, want, "{context}");
            }
        }
    }
}

/// One-shot vs prepared session under a balanced schedule: identical
/// count, identical kernel hardware counters (modeled cycles included),
/// and a second count on the same session reproduces both exactly.
#[test]
fn balanced_prepared_matches_oneshot_byte_for_byte() {
    for row in full_suite(Scale::Smoke) {
        for schedule in corner_schedules() {
            let mut opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
            opts.schedule = schedule;
            let context = format!("{}/{}", row.name, schedule);

            let (oneshot, _) = run_gpu_pipeline_profiled(&row.graph, &opts)
                .unwrap_or_else(|e| panic!("{context}: one-shot: {e}"));
            let mut prepared = PreparedGraph::prepare(&row.graph, &opts)
                .unwrap_or_else(|e| panic!("{context}: prepare: {e}"));
            let first = prepared.count().unwrap();
            let second = prepared.count().unwrap();
            prepared.release().unwrap();

            assert_eq!(oneshot.triangles, first.triangles, "{context}");
            assert_eq!(first.triangles, second.triangles, "{context}");
            for (label, a, b) in [
                ("one-shot vs prepared", &oneshot.kernel, &first.kernel),
                ("first vs second count", &first.kernel, &second.kernel),
            ] {
                assert_eq!(
                    a.sm_cycles.to_bits(),
                    b.sm_cycles.to_bits(),
                    "{context}: {label}: sm_cycles"
                );
                assert_eq!(a.transactions, b.transactions, "{context}: {label}");
                assert_eq!(a.tex, b.tex, "{context}: {label}: tex cache");
                assert_eq!(a.l2, b.l2, "{context}: {label}: l2 cache");
            }
        }
    }
}

/// The engine cache key is the canonical backend token, which carries the
/// scheduling suffix: the same graph on `gtx980` and `gtx980/balanced`
/// builds two sessions, and repeats hit only their own schedule's entry.
#[test]
fn engine_cache_distinguishes_scheduling_knobs() {
    let row = full_suite(Scale::Smoke)
        .into_iter()
        .find(|r| r.name == "citeseer")
        .unwrap();
    let graph = Arc::new(row.graph);
    let tpe: Backend = "gtx980".parse().unwrap();
    let balanced: Backend = "gtx980/balanced".parse().unwrap();
    assert_ne!(tpe.to_string(), balanced.to_string());

    let engine = Engine::new(EngineConfig::default());
    let jobs = vec![
        Job::new("tpe-a", Arc::clone(&graph), tpe.clone()),
        Job::new("bal-a", Arc::clone(&graph), balanced.clone()),
        Job::new("tpe-b", Arc::clone(&graph), tpe),
        Job::new("bal-b", Arc::clone(&graph), balanced),
    ];
    let report = engine.run_batch(jobs);
    // One prepare per distinct token, one hit per repeat — never a
    // cross-schedule hit (which would return a differently-built session).
    assert_eq!(report.cache_hits, 2, "{}", report.to_json());
    assert_eq!(engine.cached_sessions(), 2);
    let by_name = |n: &str| {
        report
            .jobs
            .iter()
            .find(|r| r.name == n)
            .and_then(|r| r.result.as_ref().ok())
            .unwrap_or_else(|| panic!("{n} failed"))
    };
    assert_eq!(by_name("tpe-a").triangles, by_name("bal-a").triangles);
    // Kernel-phase seconds are modeled and reproduce within rounding
    // (successive counts replay the same ops from a different clock
    // offset, so the phase delta can differ by a few ulps).
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs());
    assert!(close(by_name("tpe-a").count_s, by_name("tpe-b").count_s));
    assert!(close(by_name("bal-a").count_s, by_name("bal-b").count_s));
    assert!(by_name("tpe-b").cache_hit && by_name("bal-b").cache_hit);
}

/// `BatchReport::to_json` stays deterministic across worker counts with
/// balanced backends in the mix.
#[test]
fn balanced_jobfile_batches_are_deterministic_across_worker_counts() {
    let text = "\
graph=citeseer backend=gtx980/balanced repeat=3
graph=citeseer backend=gtx980
graph=dblp backend=gtx980/balanced:16x8 repeat=2
";
    let render = |workers: usize| {
        let jobs = parse_jobfile(text, Scale::Smoke).unwrap();
        let engine = Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        });
        engine.run_batch(jobs).to_json()
    };
    let lone = render(1);
    assert_eq!(lone, render(4), "worker count leaked into the report");
    assert!(lone.contains("gtx980/balanced"), "{lone}");
    assert!(lone.contains("\"cache_hits\": 3"), "{lone}");
}
