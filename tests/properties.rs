//! Property-based tests (proptest) over the core invariants:
//! backend agreement on arbitrary graphs, isomorphism invariance,
//! orientation structure, and clustering-coefficient bounds.

use proptest::prelude::*;

use triangles::core::count::{count_triangles, Backend, GpuOptions};
use triangles::core::clustering::{local_clustering, per_vertex_triangles};
use triangles::core::verify::{count_brute_force, per_vertex_brute_force};
use triangles::graph::convert::{random_permutation, relabel, shuffle_arcs};
use triangles::graph::{EdgeArray, Orientation};
use triangles::simt::DeviceConfig;

/// Strategy: a random undirected graph with ≤ 40 vertices and ≤ 150 edge
/// attempts (duplicates/self-loops cleaned by the constructor).
fn arb_graph() -> impl Strategy<Value = EdgeArray> {
    proptest::collection::vec((0u32..40, 0u32..40), 0..150)
        .prop_map(EdgeArray::from_undirected_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_cpu_backends_match_brute_force(g in arb_graph()) {
        let expected = count_brute_force(&g);
        prop_assert_eq!(count_triangles(&g, Backend::CpuForward).unwrap(), expected);
        prop_assert_eq!(count_triangles(&g, Backend::CpuEdgeIterator).unwrap(), expected);
        prop_assert_eq!(count_triangles(&g, Backend::CpuNodeIterator).unwrap(), expected);
        prop_assert_eq!(count_triangles(&g, Backend::CpuForwardHashed).unwrap(), expected);
        prop_assert_eq!(count_triangles(&g, Backend::CpuParallel).unwrap(), expected);
        prop_assert_eq!(
            count_triangles(&g, Backend::CpuHybrid { threshold: None }).unwrap(),
            expected
        );
        prop_assert_eq!(
            count_triangles(&g, Backend::CpuHybrid { threshold: Some(3) }).unwrap(),
            expected
        );
    }

    #[test]
    fn gpu_sim_matches_brute_force(g in arb_graph()) {
        let expected = count_brute_force(&g);
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        prop_assert_eq!(count_triangles(&g, Backend::Gpu(opts)).unwrap(), expected);
    }

    #[test]
    fn count_is_relabeling_invariant(g in arb_graph(), seed in 0u64..1000) {
        let n = g.num_nodes();
        let perm = random_permutation(n, seed);
        let h = relabel(&g, &perm);
        prop_assert_eq!(
            count_triangles(&g, Backend::CpuForward).unwrap(),
            count_triangles(&h, Backend::CpuForward).unwrap()
        );
    }

    #[test]
    fn count_ignores_arc_order(g in arb_graph(), seed in 0u64..1000) {
        let mut h = g.clone();
        shuffle_arcs(&mut h, seed);
        prop_assert_eq!(
            count_triangles(&g, Backend::CpuForward).unwrap(),
            count_triangles(&h, Backend::CpuForward).unwrap()
        );
    }

    #[test]
    fn orientation_invariants(g in arb_graph()) {
        let orientation = Orientation::forward(&g).unwrap();
        // Exactly one arc per undirected edge.
        prop_assert_eq!(orientation.num_arcs(), g.num_edges());
        // Every arc goes forward in the degree order.
        for arc in orientation.csr.arcs() {
            prop_assert!(orientation.order.precedes(arc.u, arc.v));
        }
        // Out-degree bound from §II-B: no oriented list exceeds √(2m̂).
        let bound = (2.0 * g.num_edges() as f64).sqrt() + 1.0;
        prop_assert!(orientation.max_out_degree() as f64 <= bound);
        // Lists sorted strictly ascending.
        for v in 0..orientation.csr.num_nodes() as u32 {
            let nb = orientation.csr.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn degeneracy_orientation_counts_identically(g in arb_graph()) {
        use triangles::core::cpu::forward::count_on_orientation;
        use triangles::graph::cores::orient_by_degeneracy;
        let expected = count_brute_force(&g);
        let (orientation, decomp) = orient_by_degeneracy(&g).unwrap();
        prop_assert_eq!(count_on_orientation(&orientation), expected);
        // The degeneracy bound is at least as tight as the √(2m̂) bound.
        prop_assert!(orientation.max_out_degree() <= decomp.degeneracy);
        let degree_bound = (2.0 * g.num_edges() as f64).sqrt() + 1.0;
        prop_assert!((decomp.degeneracy as f64) <= degree_bound);
    }

    #[test]
    fn per_vertex_counts_match_brute_force(g in arb_graph()) {
        prop_assert_eq!(per_vertex_triangles(&g).unwrap(), per_vertex_brute_force(&g));
    }

    #[test]
    fn clustering_coefficients_are_probabilities(g in arb_graph()) {
        for (v, c) in local_clustering(&g).unwrap().into_iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&c), "c({v}) = {c}");
        }
    }

    #[test]
    fn validation_accepts_constructor_output(g in arb_graph()) {
        prop_assert!(g.validate().is_ok());
    }
}
