//! Property-based tests over the core invariants: backend agreement on
//! random graphs, isomorphism invariance, orientation structure, and
//! clustering-coefficient bounds.
//!
//! The generator is a hand-rolled LCG (the same constant used throughout
//! the repo), so every run exercises the same deterministic case set —
//! no external property-testing dependency needed.

use triangles::core::clustering::{local_clustering, per_vertex_triangles};
use triangles::core::count::{Backend, CountRequest, GpuOptions};
use triangles::core::verify::{count_brute_force, per_vertex_brute_force};
use triangles::core::CoreError;
use triangles::graph::convert::{random_permutation, relabel, shuffle_arcs};
use triangles::graph::{EdgeArray, Orientation};
use triangles::simt::DeviceConfig;

/// The [`CountRequest`] front door, narrowed to the bare count.
fn count(g: &EdgeArray, backend: Backend) -> Result<u64, CoreError> {
    CountRequest::new(backend).run(g).map(|r| r.triangles)
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random undirected graph with ≤ 40 vertices and ≤ 150 edge attempts
/// (duplicates/self-loops cleaned by the constructor).
fn random_graph(case: u64) -> EdgeArray {
    let mut rng = Lcg(0x9E37_79B9_7F4A_7C15 ^ case.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    let attempts = rng.below(151) as usize;
    let pairs: Vec<(u32, u32)> = (0..attempts)
        .map(|_| (rng.below(40) as u32, rng.below(40) as u32))
        .collect();
    EdgeArray::from_undirected_pairs(pairs)
}

const CASES: u64 = 64;

#[test]
fn all_cpu_backends_match_brute_force() {
    for case in 0..CASES {
        let g = random_graph(case);
        let expected = count_brute_force(&g);
        assert_eq!(
            count(&g, Backend::CpuForward).unwrap(),
            expected,
            "case {case}"
        );
        assert_eq!(count(&g, Backend::CpuEdgeIterator).unwrap(), expected);
        assert_eq!(count(&g, Backend::CpuNodeIterator).unwrap(), expected);
        assert_eq!(count(&g, Backend::CpuForwardHashed).unwrap(), expected);
        assert_eq!(count(&g, Backend::CpuParallel).unwrap(), expected);
        assert_eq!(
            count(&g, Backend::CpuHybrid { threshold: None }).unwrap(),
            expected
        );
        assert_eq!(
            count(&g, Backend::CpuHybrid { threshold: Some(3) }).unwrap(),
            expected
        );
    }
}

#[test]
fn gpu_sim_matches_brute_force() {
    for case in 0..CASES {
        let g = random_graph(case);
        let expected = count_brute_force(&g);
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        assert_eq!(
            count(&g, Backend::Gpu(opts)).unwrap(),
            expected,
            "case {case}"
        );
    }
}

#[test]
fn count_is_relabeling_invariant() {
    for case in 0..CASES {
        let g = random_graph(case);
        let perm = random_permutation(g.num_nodes(), case * 31 + 7);
        let h = relabel(&g, &perm);
        assert_eq!(
            count(&g, Backend::CpuForward).unwrap(),
            count(&h, Backend::CpuForward).unwrap(),
            "case {case}"
        );
    }
}

/// Degree-descending reordering (`/reorder`) must be a pure relabeling:
/// identical triangle counts on every suite graph × device preset ×
/// schedule, and the input graph's canonical digest untouched (the pass
/// works on device copies, never the host arrays).
#[test]
fn degree_reordering_is_a_pure_relabeling_across_suite_and_presets() {
    use triangles::gen::suite::{full_suite, Scale};
    for row in full_suite(Scale::Smoke) {
        let digest = row.graph.digest();
        let mut counts = std::collections::BTreeMap::new();
        for device in ["gtx980", "c2050", "nvs5200m"] {
            for schedule in ["", "/balanced", "/balanced+hash"] {
                let plain = count(&row.graph, format!("{device}{schedule}").parse().unwrap())
                    .unwrap_or_else(|e| panic!("{} {device}{schedule}: {e}", row.name));
                let reordered = count(
                    &row.graph,
                    format!("{device}{schedule}/reorder").parse().unwrap(),
                )
                .unwrap_or_else(|e| panic!("{} {device}{schedule}/reorder: {e}", row.name));
                assert_eq!(
                    plain, reordered,
                    "{} on {device}{schedule}: reorder changed the count",
                    row.name
                );
                counts.insert(format!("{device}{schedule}"), plain);
            }
        }
        // Every preset × schedule agrees with every other.
        assert!(
            counts.values().all(|&c| c == counts["gtx980"]),
            "{}: presets disagree: {counts:?}",
            row.name
        );
        assert_eq!(
            row.graph.digest(),
            digest,
            "{}: reordering mutated the input graph",
            row.name
        );
    }
}

/// Reordering composes with the random-relabeling invariance: reordering a
/// randomly relabeled graph still reports the original count.
#[test]
fn reordering_is_relabeling_invariant_on_random_graphs() {
    for case in 0..CASES / 4 {
        let g = random_graph(case);
        let expected = count_brute_force(&g);
        let perm = random_permutation(g.num_nodes(), case * 13 + 5);
        let h = relabel(&g, &perm);
        for token in ["gtx980/reorder", "gtx980/balanced+hash/reorder"] {
            assert_eq!(
                count(&h, token.parse().unwrap()).unwrap(),
                expected,
                "case {case} on {token}"
            );
        }
    }
}

#[test]
fn count_ignores_arc_order() {
    for case in 0..CASES {
        let g = random_graph(case);
        let mut h = g.clone();
        shuffle_arcs(&mut h, case * 17 + 3);
        assert_eq!(
            count(&g, Backend::CpuForward).unwrap(),
            count(&h, Backend::CpuForward).unwrap(),
            "case {case}"
        );
    }
}

#[test]
fn orientation_invariants() {
    for case in 0..CASES {
        let g = random_graph(case);
        let orientation = Orientation::forward(&g).unwrap();
        // Exactly one arc per undirected edge.
        assert_eq!(orientation.num_arcs(), g.num_edges(), "case {case}");
        // Every arc goes forward in the degree order.
        for arc in orientation.csr.arcs() {
            assert!(orientation.order.precedes(arc.u, arc.v));
        }
        // Out-degree bound from §II-B: no oriented list exceeds √(2m̂).
        let bound = (2.0 * g.num_edges() as f64).sqrt() + 1.0;
        assert!(orientation.max_out_degree() as f64 <= bound);
        // Lists sorted strictly ascending.
        for v in 0..orientation.csr.num_nodes() as u32 {
            let nb = orientation.csr.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

#[test]
fn degeneracy_orientation_counts_identically() {
    use triangles::core::cpu::forward::count_on_orientation;
    use triangles::graph::cores::orient_by_degeneracy;
    for case in 0..CASES {
        let g = random_graph(case);
        let expected = count_brute_force(&g);
        let (orientation, decomp) = orient_by_degeneracy(&g).unwrap();
        assert_eq!(count_on_orientation(&orientation), expected, "case {case}");
        // The degeneracy bound is at least as tight as the √(2m̂) bound.
        assert!(orientation.max_out_degree() <= decomp.degeneracy);
        let degree_bound = (2.0 * g.num_edges() as f64).sqrt() + 1.0;
        assert!((decomp.degeneracy as f64) <= degree_bound);
    }
}

#[test]
fn per_vertex_counts_match_brute_force() {
    for case in 0..CASES {
        let g = random_graph(case);
        assert_eq!(
            per_vertex_triangles(&g).unwrap(),
            per_vertex_brute_force(&g),
            "case {case}"
        );
    }
}

#[test]
fn clustering_coefficients_are_probabilities() {
    for case in 0..CASES {
        let g = random_graph(case);
        for (v, c) in local_clustering(&g).unwrap().into_iter().enumerate() {
            assert!((0.0..=1.0).contains(&c), "case {case}: c({v}) = {c}");
        }
    }
}

#[test]
fn validation_accepts_constructor_output() {
    for case in 0..CASES {
        assert!(random_graph(case).validate().is_ok(), "case {case}");
    }
}
