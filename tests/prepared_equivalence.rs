//! The prepare/count split must be invisible: a one-shot pipeline run and
//! a `PreparedGraph` session must produce the same count, the same kernel
//! hardware counters, and the same modeled span timings — for every suite
//! graph, every device preset, and every kernel option combination. Plus
//! engine-level integration: batches agree with direct requests, reports
//! are deterministic across worker counts, and backpressure/timeouts
//! behave under adversarial configs.

use std::sync::Arc;

use triangles::core::count::{Backend, CountRequest, GpuOptions};
use triangles::core::gpu::pipeline::run_gpu_pipeline_profiled;
use triangles::core::{EdgeLayout, LoopVariant, PreparedGraph};
use triangles::engine::{parse_jobfile, Engine, EngineConfig, EngineError, Job};
use triangles::gen::suite::{full_suite, Scale};
use triangles::simt::DeviceConfig;

/// One-shot vs prepared session: identical count, kernel counters, and
/// kernel-span profile (modeled times included) on every suite graph and
/// device preset.
#[test]
fn prepared_matches_oneshot_on_every_suite_graph_and_device() {
    let devices = [
        DeviceConfig::gtx_980(),
        DeviceConfig::tesla_c2050(),
        DeviceConfig::nvs_5200m(),
    ];
    for row in full_suite(Scale::Smoke) {
        for device in &devices {
            let context = format!("{}/{}", row.name, device.name);
            let opts = GpuOptions::new(device.clone().with_unlimited_memory());

            let (report, trace) = run_gpu_pipeline_profiled(&row.graph, &opts)
                .unwrap_or_else(|e| panic!("{context}: one-shot: {e}"));
            let mut prepared = PreparedGraph::prepare(&row.graph, &opts)
                .unwrap_or_else(|e| panic!("{context}: prepare: {e}"));
            let counted = prepared
                .count()
                .unwrap_or_else(|e| panic!("{context}: count: {e}"));

            assert_eq!(counted.triangles, report.triangles, "{context}");
            assert_eq!(counted.kernel, report.kernel, "{context}: kernel stats");
            assert_eq!(
                counted.profile.span("count/count-kernel"),
                trace.profile.span("count/count-kernel"),
                "{context}: kernel span"
            );
            assert_eq!(
                counted.profile.span("count/reduce"),
                trace.profile.span("count/reduce"),
                "{context}: reduce span"
            );
            prepared.release().unwrap();
        }
    }
}

/// The split is equivalence-preserving under every §III-D option toggle,
/// not just the defaults.
#[test]
fn prepared_matches_oneshot_for_every_kernel_option() {
    let g = full_suite(Scale::Smoke)
        .into_iter()
        .find(|r| r.name == "citeseer")
        .expect("suite has citeseer")
        .graph;
    for layout in [EdgeLayout::SoA, EdgeLayout::AoS] {
        for variant in [LoopVariant::FinalReadAvoiding, LoopVariant::Preliminary] {
            for cached in [true, false] {
                for split in [1u32, 2] {
                    let mut opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
                    opts.layout = layout;
                    opts.kernel = variant;
                    opts.use_texture_cache = cached;
                    opts.warp_split = split;
                    let context = format!(
                        "layout={layout:?} variant={variant:?} cached={cached} split={split}"
                    );

                    let (report, _) = run_gpu_pipeline_profiled(&g, &opts).unwrap();
                    let mut prepared = PreparedGraph::prepare(&g, &opts).unwrap();
                    let counted = prepared.count().unwrap();
                    assert_eq!(counted.triangles, report.triangles, "{context}");
                    assert_eq!(counted.kernel, report.kernel, "{context}");
                }
            }
        }
    }
}

/// Repeated counts from one session keep serving the same answer with the
/// same kernel counters — the property the engine's cache relies on.
#[test]
fn repeated_counts_are_stable() {
    let g = full_suite(Scale::Smoke)
        .into_iter()
        .find(|r| r.name == "dblp")
        .unwrap()
        .graph;
    let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
    let mut prepared = PreparedGraph::prepare(&g, &opts).unwrap();
    let first = prepared.count().unwrap();
    for _ in 0..3 {
        let again = prepared.count().unwrap();
        assert_eq!(again.triangles, first.triangles);
        assert_eq!(again.kernel, first.kernel);
        // Identical modeled duration up to float rounding (the subtraction
        // `elapsed() - t0` happens at different absolute clock offsets).
        assert!(
            (again.count_s - first.count_s).abs() <= first.count_s * 1e-12,
            "{} vs {}",
            again.count_s,
            first.count_s
        );
    }
    assert_eq!(prepared.counts_served(), 4);
}

/// Engine batches agree with direct `CountRequest`s across backend kinds,
/// cache hits included.
#[test]
fn engine_batches_agree_with_direct_requests() {
    let g = Arc::new(
        full_suite(Scale::Smoke)
            .into_iter()
            .find(|r| r.name == "kronecker-8")
            .unwrap()
            .graph,
    );
    let backends = ["gtx980", "c2050", "forward", "hybrid:8", "2xc2050"];
    let mut jobs = Vec::new();
    for token in backends {
        let backend: Backend = token.parse().unwrap();
        // Twice each: the second GPU job per token exercises the cache.
        for rep in 0..2 {
            jobs.push(Job::new(
                format!("{token}#{rep}"),
                Arc::clone(&g),
                backend.clone(),
            ));
        }
    }
    let engine = Engine::new(EngineConfig::default());
    let report = engine.run_batch(jobs);
    assert!(report.cache_hits >= 2, "two GPU tokens repeat");
    for record in &report.jobs {
        let backend: Backend = record.backend.parse().unwrap();
        let direct = CountRequest::new(backend).run(&g).unwrap();
        let got = record.result.as_ref().unwrap();
        assert_eq!(got.triangles, direct.triangles, "{}", record.name);
    }
}

/// The full jobfile → engine → JSON path is deterministic across worker
/// counts (modeled time plus static cache planning).
#[test]
fn jobfile_batches_are_deterministic_across_worker_counts() {
    let text = "\
# mixed jobfile: repeats, two devices, a CPU row
graph=citeseer backend=gtx980 repeat=4
graph=dblp backend=c2050 repeat=2
graph=citeseer backend=c2050
";
    let render = |workers: usize| {
        let jobs = parse_jobfile(text, Scale::Smoke).unwrap();
        let engine = Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        });
        engine.run_batch(jobs).to_json()
    };
    let lone = render(1);
    assert_eq!(lone, render(4), "worker count leaked into the report");
    assert!(lone.contains("\"cache_hits\": 4"), "{lone}");
}

/// A one-slot queue (maximum backpressure) still completes every job.
#[test]
fn tiny_queue_and_many_jobs_complete_under_backpressure() {
    let g = Arc::new(
        full_suite(Scale::Smoke)
            .into_iter()
            .find(|r| r.name == "kronecker-6")
            .unwrap()
            .graph,
    );
    let engine = Engine::new(EngineConfig {
        workers: 3,
        queue_capacity: 1,
        cache_capacity: 2,
        ..EngineConfig::default()
    });
    let jobs: Vec<Job> = (0..24)
        .map(|i| Job::new(format!("j{i}"), Arc::clone(&g), "gtx980".parse().unwrap()))
        .collect();
    let report = engine.run_batch(jobs);
    assert_eq!(report.jobs.len(), 24);
    let expected = CountRequest::new("gtx980".parse().unwrap())
        .run(&g)
        .unwrap()
        .triangles;
    for record in &report.jobs {
        assert_eq!(record.result.as_ref().unwrap().triangles, expected);
    }
}

/// Modeled-time timeouts surface as per-job errors without failing the
/// batch, and a generous budget lets the same job pass.
#[test]
fn timeouts_are_per_job_and_modeled() {
    let g = Arc::new(
        full_suite(Scale::Smoke)
            .into_iter()
            .find(|r| r.name == "orkut")
            .unwrap()
            .graph,
    );
    let backend: Backend = "gtx980".parse().unwrap();
    let engine = Engine::new(EngineConfig::default());
    let report = engine.run_batch(vec![
        Job::new("strict", Arc::clone(&g), backend.clone()).timeout_ms(1e-9),
        Job::new("lenient", Arc::clone(&g), backend).timeout_ms(60_000.0),
    ]);
    match &report.jobs[0].result {
        Err(EngineError::Timeout { limit_ms, .. }) => assert!(*limit_ms <= 1e-9),
        other => panic!("expected timeout, got {other:?}"),
    }
    assert!(report.jobs[1].result.is_ok(), "lenient budget must pass");
}
