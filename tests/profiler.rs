//! Integration tests of the profiler subsystem: counter conservation,
//! span nesting invariants, machine-readable output validity, and
//! byte-identical determinism.

use triangles::core::count::GpuOptions;
use triangles::core::gpu::multi::{merged_profile, run_multi_gpu_profiled};
use triangles::core::gpu::pipeline::{run_gpu_pipeline_profiled, RunTrace};
use triangles::gen::{erdos_renyi, Seed};
use triangles::simt::trace::{write_chrome_trace_spanned, TraceThread};
use triangles::simt::{Counters, DeviceConfig};

fn profiled_run() -> RunTrace {
    let g = erdos_renyi::gnm(200, 1_200, Seed(11));
    let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
    let (_, trace) = run_gpu_pipeline_profiled(&g, &opts).unwrap();
    trace
}

/// Fields of `Counters` as comparable scalar tuples (name, value, exact?)
/// so equality failures name the field instead of dumping two structs.
/// Integer-backed fields must match exactly; float fields are the same
/// addends summed in a different association (span deltas vs running
/// totals), so they get an ulp-level relative tolerance.
fn counter_fields(c: &Counters) -> Vec<(&'static str, f64, bool)> {
    vec![
        ("kernel_launches", c.kernel_launches as f64, true),
        ("kernel_time_s", c.kernel_time_s, false),
        ("sm_cycles", c.sm_cycles, false),
        ("lane_steps", c.lane_steps as f64, true),
        ("warp_steps", c.warp_steps as f64, true),
        ("divergent_steps", c.divergent_steps as f64, true),
        ("serialized_groups", c.serialized_groups as f64, true),
        ("issue_stall_cycles", c.issue_stall_cycles, false),
        ("transactions", c.transactions as f64, true),
        ("dram_read_bytes", c.dram_read_bytes as f64, true),
        ("dram_write_bytes", c.dram_write_bytes as f64, true),
        ("tex_accesses", c.tex.accesses as f64, true),
        ("tex_hits", c.tex.hits as f64, true),
        ("l2_accesses", c.l2.accesses as f64, true),
        ("l2_hits", c.l2.hits as f64, true),
        ("htod_bytes", c.htod_bytes as f64, true),
        ("dtoh_bytes", c.dtoh_bytes as f64, true),
        ("occupancy_weight", c.occupancy_weight, false),
    ]
}

fn assert_counters_eq(a: &Counters, b: &Counters, what: &str) {
    for ((name, x, exact), (_, y, _)) in counter_fields(a).iter().zip(counter_fields(b).iter()) {
        if *exact {
            assert_eq!(x, y, "{what}: field {name} differs ({x} vs {y})");
        } else {
            let scale = x.abs().max(y.abs()).max(f64::MIN_POSITIVE);
            assert!(
                (x - y).abs() <= 1e-12 * scale,
                "{what}: field {name} differs ({x} vs {y})"
            );
        }
    }
}

fn sum_counters<'a>(spans: impl Iterator<Item = &'a triangles::simt::Span>) -> Counters {
    let mut total = Counters::default();
    for s in spans {
        total.add(&s.counters);
    }
    total
}

#[test]
fn top_level_phase_deltas_sum_to_device_totals() {
    let profile = profiled_run().profile;
    let tops = sum_counters(profile.spans.iter().filter(|s| s.depth == 0));
    assert_counters_eq(&tops, &profile.totals, "top-level spans vs totals");
    assert!(profile.totals.kernel_launches > 0);
    assert!(profile.totals.dram_bytes() > 0);
}

#[test]
fn child_phase_deltas_sum_to_their_parent() {
    let profile = profiled_run().profile;
    for parent in profile
        .spans
        .iter()
        .filter(|s| s.path == "preprocess" || s.path == "count")
    {
        let prefix = format!("{}/", parent.path);
        let kids = sum_counters(
            profile
                .spans
                .iter()
                .filter(|s| s.depth == parent.depth + 1 && s.path.starts_with(&prefix)),
        );
        assert_counters_eq(
            &kids,
            &parent.counters,
            &format!("children of {}", parent.path),
        );
    }
}

#[test]
fn nested_spans_never_leave_their_parent_bounds() {
    let trace = profiled_run();
    for child in trace.spans.iter().filter(|s| s.depth > 0) {
        let (parent_path, _) = child.path.rsplit_once('/').unwrap();
        let parent = trace
            .spans
            .iter()
            .find(|p| p.path == parent_path && p.start_s <= child.start_s)
            .unwrap_or_else(|| panic!("no parent span for {}", child.path));
        assert!(
            parent.start_s <= child.start_s && child.end_s <= parent.end_s,
            "{} [{}, {}] escapes parent {} [{}, {}]",
            child.path,
            child.start_s,
            child.end_s,
            parent.path,
            parent.start_s,
            parent.end_s
        );
        assert!(
            child.start_s <= child.end_s,
            "{} runs backwards",
            child.path
        );
    }
    // Leaf ops stay inside the run.
    let total = trace.profile.total_s;
    for op in &trace.log {
        assert!(op.start_s >= 0.0 && op.start_s + op.seconds <= total + 1e-12);
    }
}

#[test]
fn profile_and_trace_json_are_structurally_valid() {
    let trace = profiled_run();
    let profile_json = trace.profile.to_json();
    json::parse(&profile_json).unwrap_or_else(|e| panic!("profile JSON invalid: {e}"));
    // The report names every pipeline phase.
    for step in [
        "preprocess/3-sort-edges",
        "count/count-kernel",
        "count/reduce",
    ] {
        assert!(
            profile_json.contains(&format!("\"{step}\"")),
            "missing {step}"
        );
    }

    let dir = std::env::temp_dir().join("tc_profiler_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("nested_trace.json");
    let threads = [TraceThread {
        name: &trace.device_name,
        log: &trace.log,
        spans: &trace.spans,
    }];
    write_chrome_trace_spanned(&threads, &path).unwrap();
    let trace_json = std::fs::read_to_string(&path).unwrap();
    json::parse(&trace_json).unwrap_or_else(|e| panic!("trace JSON invalid: {e}"));
    assert!(trace_json.contains("\"CountTriangles\""));
    assert!(trace_json.contains("\"preprocess\""));
}

#[test]
fn profiler_output_is_byte_identical_across_runs() {
    let a = profiled_run();
    let b = profiled_run();
    assert_eq!(a.profile.to_json(), b.profile.to_json());

    let dir = std::env::temp_dir().join("tc_profiler_test");
    std::fs::create_dir_all(&dir).unwrap();
    let mut files = Vec::new();
    for (i, t) in [&a, &b].iter().enumerate() {
        let path = dir.join(format!("det_{i}.json"));
        let threads = [TraceThread {
            name: &t.device_name,
            log: &t.log,
            spans: &t.spans,
        }];
        write_chrome_trace_spanned(&threads, &path).unwrap();
        files.push(std::fs::read(&path).unwrap());
    }
    assert_eq!(files[0], files[1], "trace files must be byte-identical");
}

#[test]
fn merged_multi_gpu_profile_conserves_counters() {
    let g = erdos_renyi::gnm(200, 1_200, Seed(12));
    let opts = GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory());
    let (_, traces) = run_multi_gpu_profiled(&g, &opts, 4).unwrap();
    assert_eq!(traces.len(), 4);
    let merged = merged_profile(&traces);
    assert_eq!(merged.devices, 4);
    let summed = traces.iter().fold(Counters::default(), |mut acc, t| {
        acc.add(&t.profile.totals);
        acc
    });
    assert_counters_eq(&summed, &merged.totals, "merged multi-GPU totals");
    // Every device counted: each per-device profile has a kernel span.
    for t in &traces {
        let span = t.profile.span("count/count-kernel").unwrap();
        assert!(span.counters.kernel_launches >= 1, "{}", t.device_name);
    }
    json::parse(&merged.to_json()).unwrap_or_else(|e| panic!("merged JSON invalid: {e}"));
}

/// A minimal recursive-descent JSON parser used only to validate output
/// structure (the crate deliberately has no serde dependency).
mod json {
    pub fn parse(s: &str) -> Result<(), String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, b"true"),
            Some(b'f') => literal(b, pos, b"false"),
            Some(b'n') => literal(b, pos, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            other => Err(format!("unexpected {other:?} at byte {pos}")),
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}"));
            }
            *pos += 1;
            skip_ws(b, pos);
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or '}}', got {other:?} at {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // [
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or ']', got {other:?} at {pos}")),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {pos}"));
        }
        *pos += 1;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                b'\\' => *pos += 2,
                _ => *pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while let Some(&c) = b.get(*pos) {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                *pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&b[start..*pos]).unwrap();
        text.parse::<f64>()
            .map_err(|_| format!("bad number {text:?} at {start}"))?;
        Ok(())
    }

    fn literal(b: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), String> {
        if b.len() >= *pos + word.len() && &b[*pos..*pos + word.len()] == word {
            *pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }
}
