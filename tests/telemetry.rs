//! Engine-wide telemetry guarantees (DESIGN.md §13): the deterministic
//! metrics snapshot and the unified request traces must be byte-identical
//! across runs and worker counts; one trace must show a request from the
//! engine front door down to the counting kernel's phases; and failures —
//! modeled-time timeouts, queue refusals — must attribute themselves to
//! the right request stage in errors, counters, and traces alike.

use std::sync::Arc;

use triangles::core::count::{Backend, GpuOptions};
use triangles::engine::{Admission, Engine, EngineConfig, EngineError, Job};
use triangles::gen::suite::{full_suite, Scale};
use triangles::graph::EdgeArray;
use triangles::telemetry::Stage;

fn gpu() -> Backend {
    Backend::Gpu(GpuOptions::new(
        triangles::simt::DeviceConfig::gtx_980().with_unlimited_memory(),
    ))
}

fn diamond() -> Arc<EdgeArray> {
    Arc::new(EdgeArray::from_undirected_pairs([
        (0, 1),
        (0, 2),
        (1, 2),
        (1, 3),
        (2, 3),
    ]))
}

fn suite_graph(name: &str) -> Arc<EdgeArray> {
    Arc::new(
        full_suite(Scale::Smoke)
            .into_iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("no suite graph {name}"))
            .graph,
    )
}

fn mixed_jobs(g1: &Arc<EdgeArray>, g2: &Arc<EdgeArray>) -> Vec<Job> {
    let mut jobs: Vec<Job> = (0..4)
        .map(|i| Job::new(format!("a{i}"), Arc::clone(g1), gpu()))
        .collect();
    jobs.push(Job::new("cpu", Arc::clone(g1), Backend::CpuForward));
    jobs.extend((0..3).map(|i| Job::new(format!("b{i}"), Arc::clone(g2), gpu())));
    jobs
}

/// The tentpole guarantee: same jobfile → byte-identical metrics JSON
/// (CI view), Prometheus exposition, and unified Chrome trace, no matter
/// how many workers raced over the queue.
#[test]
fn telemetry_artifacts_are_byte_identical_across_worker_counts() {
    let g1 = suite_graph("kronecker-6");
    let g2 = diamond();
    let mut artifacts = Vec::new();
    for workers in [1, 2, 4] {
        let engine = Engine::new(EngineConfig {
            workers,
            queue_capacity: 2,
            cache_capacity: 2,
            admission: Admission::Block,
        });
        let report = engine.run_batch(mixed_jobs(&g1, &g2));
        assert!(report.jobs.iter().all(|j| j.result.is_ok()));
        artifacts.push((
            report.metrics_json(false),
            report.metrics_prometheus(),
            report.trace_json(),
        ));
    }
    let (m1, p1, t1) = &artifacts[0];
    for (m, p, t) in &artifacts[1..] {
        assert_eq!(m, m1, "metrics JSON must not depend on worker count");
        assert_eq!(t, t1, "trace must not depend on worker count");
        // The Prometheus view renders advisory series too (host timings
        // vary), so compare only its deterministic lines.
        let det = |s: &str| {
            s.lines()
                .filter(|l| {
                    !l.contains("advisory")
                        && !l.contains("_host_")
                        && !l.contains("queue_depth")
                        && !l.contains("engine_workers")
                        && !l.contains("devices_created")
                })
                .count()
        };
        assert_eq!(det(p), det(p1));
    }
    // And a second identical run reproduces the same bytes exactly.
    let engine = Engine::new(EngineConfig {
        workers: 3,
        queue_capacity: 2,
        cache_capacity: 2,
        admission: Admission::Block,
    });
    let report = engine.run_batch(mixed_jobs(&g1, &g2));
    assert_eq!(&report.metrics_json(false), m1);
    assert_eq!(&report.trace_json(), t1);
}

/// One trace shows the whole request: engine stage spans (admission,
/// cache decision, prepare, count, merge) nesting the kernel profiler's
/// spans — preprocessing steps under `engine:prepare`, the counting
/// kernel and reduction under `engine:count`.
#[test]
fn unified_trace_nests_kernel_spans_inside_engine_stages() {
    let g = suite_graph("kronecker-6");
    let engine = Engine::new(EngineConfig::default());
    let report = engine.run_batch(vec![
        Job::new("miss", Arc::clone(&g), gpu()),
        Job::new("hit", g, gpu()),
    ]);

    let miss = &report.traces[0];
    assert_eq!(miss.id, 0);
    let prepare = miss.span("engine:prepare").expect("prepare stage");
    let count = miss.span("engine:count").expect("count stage");
    assert!(prepare.dur_ns > 0);
    assert!(count.dur_ns > 0);
    assert_eq!(count.start_ns, prepare.end_ns(), "stages are contiguous");
    assert!(miss.span("engine:cache-miss").is_some());
    // Kernel-layer spans are nested inside their stage, in modeled time.
    let steps = miss
        .spans
        .iter()
        .filter(|s| s.name.starts_with("preprocess/"))
        .count();
    assert!(steps >= 7, "prepare nests the §III-B steps, got {steps}");
    let kernel = miss.span("count/count-kernel").expect("kernel span");
    assert!(kernel.start_ns >= count.start_ns && kernel.end_ns() <= count.end_ns());
    assert!(kernel.depth > count.depth);

    // The cache hit paid no prepare: its trace starts at the count.
    let hit = &report.traces[1];
    assert!(hit.span("engine:cache-hit").is_some());
    assert!(hit.span("engine:prepare").is_none());
    assert_eq!(hit.span("engine:count").unwrap().start_ns, 0);
    assert!(hit.span("count/count-kernel").is_some());

    // Both requests appear in the one serialized Chrome document, and the
    // hit's kernel spans are byte-wise on their own timeline.
    let json = report.trace_json();
    assert!(json.contains("req 0: miss"));
    assert!(json.contains("req 1: hit"));
    assert!(json.contains("count/count-kernel"));
}

/// Modeled-time timeouts attribute the blown budget to the stage whose
/// charge exceeded it, in the error, the failure counters, and the trace.
#[test]
fn timeouts_attribute_their_stage() {
    let g = diamond();
    let g2 = suite_graph("kronecker-6");
    // Probe the modeled charges once (they are deterministic), then pick
    // a budget that prepare alone fits but prepare + count does not.
    let probe = Engine::new(EngineConfig::default());
    let probed = probe.run_batch(vec![Job::new("probe", Arc::clone(&g2), gpu())]);
    let r = probed.jobs[0].result.as_ref().unwrap();
    assert!(r.prepare_s > 0.0 && r.count_s > 0.0);
    let between_ms = (2.0 * r.prepare_s + r.count_s) / 2.0 * 1e3;

    let engine = Engine::new(EngineConfig::default());
    let report = engine.run_batch(vec![
        // Budget below even the prepare charge → Prepare's fault.
        Job::new("prep-blown", Arc::clone(&g), gpu()).timeout_ms(1e-9),
        // Budget above prepare alone but below prepare+count → Count's.
        // (A distinct graph keeps this a miss so it pays the prepare.)
        Job::new("count-blown", g2, gpu()).timeout_ms(between_ms),
        Job::new("fine", g, gpu()).timeout_ms(10_000.0),
    ]);
    match &report.jobs[0].result {
        Err(e @ EngineError::Timeout { .. }) => assert_eq!(e.stage(), Stage::Prepare),
        other => panic!("expected timeout, got {other:?}"),
    }
    match &report.jobs[1].result {
        Err(e @ EngineError::Timeout { .. }) => assert_eq!(e.stage(), Stage::Count),
        other => panic!("expected timeout, got {other:?}"),
    }
    assert!(report.jobs[2].result.is_ok());

    let m = engine.metrics();
    assert_eq!(m.counter_value("engine_timeouts_total", &[]), 2);
    assert_eq!(
        m.counter_value("engine_jobs_failed_total", &[("stage", "prepare")]),
        1
    );
    assert_eq!(
        m.counter_value("engine_jobs_failed_total", &[("stage", "count")]),
        1
    );
    assert_eq!(m.counter_value("engine_jobs_ok_total", &[]), 1);

    // The failed requests' traces carry the stage-attributed error marker.
    assert!(report.traces[0].span("engine:error[prepare]").is_some());
    assert!(report.traces[1].span("engine:error[count]").is_some());
    assert!(report.traces[2].span("engine:merge").is_some());
}

/// Under `Admission::Shed` a full queue refuses jobs instead of blocking:
/// every refusal is a `QueueFull` error attributed to admission, and the
/// advisory shed counter agrees with the report exactly.
#[test]
fn shedding_counts_and_attributes_queue_refusals() {
    let g = suite_graph("kronecker-8");
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 1,
        admission: Admission::Shed,
    });
    // One worker, one slot: while the worker chews the first (prepare-
    // heavy) job, at most one more waits; the rest of the flood sheds.
    let jobs: Vec<Job> = (0..50)
        .map(|i| Job::new(format!("j{i}"), Arc::clone(&g), gpu()))
        .collect();
    let report = engine.run_batch(jobs);
    let shed: Vec<&str> = report
        .jobs
        .iter()
        .filter_map(|j| match &j.result {
            Err(e @ EngineError::QueueFull { .. }) => {
                assert_eq!(e.stage(), Stage::Admission);
                Some(j.name.as_str())
            }
            _ => None,
        })
        .collect();
    assert!(
        !shed.is_empty(),
        "a 50-job flood through a 1-slot queue must shed"
    );
    assert_eq!(
        engine.metrics().counter_value("engine_shed_total", &[]),
        shed.len() as u64,
        "advisory shed counter agrees with the report"
    );
    assert_eq!(
        engine
            .metrics()
            .counter_value("engine_jobs_failed_total", &[("stage", "admission")]),
        shed.len() as u64
    );
    // Shed requests still get a trace, marked at admission.
    let refused = report
        .traces
        .iter()
        .filter(|t| t.span("engine:error[admission]").is_some())
        .count();
    assert_eq!(refused, shed.len());
    // Everything that was admitted completed correctly.
    for job in &report.jobs {
        if let Ok(r) = &job.result {
            assert_eq!(
                r.triangles,
                report.jobs[0].result.as_ref().unwrap().triangles
            );
        }
    }
}

/// Blocking admission (the default) never sheds: the same flood completes
/// every job, the shed counter stays zero, and the queue's high-water
/// mark was observed.
#[test]
fn blocking_admission_completes_the_same_flood() {
    let g = diamond();
    let engine = Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 1,
        cache_capacity: 1,
        admission: Admission::Block,
    });
    let jobs: Vec<Job> = (0..30)
        .map(|i| Job::new(format!("j{i}"), Arc::clone(&g), gpu()))
        .collect();
    let report = engine.run_batch(jobs);
    assert!(report.jobs.iter().all(|j| j.result.is_ok()));
    let m = engine.metrics();
    assert_eq!(m.counter_value("engine_shed_total", &[]), 0);
    assert_eq!(m.counter_value("engine_jobs_ok_total", &[]), 30);
    assert_eq!(m.counter_value("engine_cache_hits_total", &[]), 29);
    assert_eq!(engine.cache_hit_ratio(), Some(29.0 / 30.0));
    let hw = m
        .gauge_value("engine_queue_depth_highwater", &[])
        .expect("high-water gauge set");
    assert!((0.0..=1.0).contains(&hw), "1-slot queue high water: {hw}");
}

/// The deterministic metrics view classifies only modeled quantities;
/// everything host-measured lives in the advisory section and disappears
/// in CI mode.
#[test]
fn advisory_section_separates_host_measured_series() {
    let g = diamond();
    let engine = Engine::new(EngineConfig::default());
    let report = engine.run_batch(vec![
        Job::new("gpu", Arc::clone(&g), gpu()),
        Job::new("cpu", g, Backend::CpuForward),
    ]);
    let full = report.metrics_json(true);
    let ci = report.metrics_json(false);
    // Host-measured series render only in the advisory section.
    for advisory in [
        "engine_queue_wait_host_ns",
        "engine_cpu_host_ns",
        "engine_devices_created",
        "engine_workers",
    ] {
        assert!(full.contains(advisory), "{advisory} missing from full view");
        assert!(!ci.contains(advisory), "{advisory} leaked into CI view");
    }
    assert!(ci.contains("\"advisory\": null"));
    // Deterministic series appear in both.
    for deterministic in [
        "engine_requests_total",
        "engine_count_modeled_ns",
        "engine_cache_hit_ratio",
    ] {
        assert!(ci.contains(deterministic), "{deterministic} missing");
    }
    // The CPU job contributed no deterministic timing: its count stage is
    // an instant in the trace.
    let cpu = &report.traces[1];
    assert_eq!(cpu.span("engine:count").unwrap().dur_ns, 0);
    assert_eq!(cpu.total_ns(), 0);
}
