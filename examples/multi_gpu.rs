//! The multi-GPU setup of paper §III-E: preprocess once, broadcast, count
//! stripes on 1, 2, and 4 simulated Tesla C2050s, and compare the observed
//! speedup with the Amdahl ceiling implied by the preprocessing fraction.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use triangles::core::count::GpuOptions;
use triangles::core::gpu::multi::run_multi_gpu;
use triangles::gen::kronecker::Rmat;
use triangles::gen::Seed;
use triangles::simt::DeviceConfig;

fn main() {
    // Kronecker graphs have the largest triangles-to-edges ratio of the
    // suite, which is why they profit most from extra devices (§III-E).
    let graph = Rmat::scale(12).edge_factor(38).generate(Seed(3));
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let opts = GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory());
    let single = run_multi_gpu(&graph, &opts, 1).expect("1 gpu");
    let f = single.preprocess_s / single.total_s;
    println!(
        "single C2050: {:.3} ms total ({:.3} ms preprocessing, fraction {:.2})",
        single.total_s * 1e3,
        single.preprocess_s * 1e3,
        f
    );

    println!(
        "\n{:>8} {:>12} {:>14} {:>16}",
        "devices", "total [ms]", "speedup", "amdahl ceiling"
    );
    for devices in [1usize, 2, 4] {
        let run = run_multi_gpu(&graph, &opts, devices).expect("multi gpu");
        assert_eq!(run.triangles, single.triangles);
        let ceiling = 1.0 / (f + (1.0 - f) / devices as f64);
        println!(
            "{:>8} {:>12.3} {:>13.2}x {:>15.2}x",
            devices,
            run.total_s * 1e3,
            single.total_s / run.total_s,
            ceiling
        );
    }
    println!("\ntriangles: {}", single.triangles);
    println!("The observed speedup tracks (and stays below) the Amdahl ceiling");
    println!("set by the single-device preprocessing phase — §III-E's argument.");
}
