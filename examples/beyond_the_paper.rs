//! The paper's §VI future-work directions and §V comparison points, all
//! implemented in this repository:
//!
//! * graph splitting so the graph never has to fit on the device at once
//!   (the scheme of [5], Suri–Vassilvitskii);
//! * the hybrid algorithm with dense counting for high-degree vertices
//!   (toward [21], Alon–Yuster–Zwick);
//! * the approximation alternatives (DOULION [6], wedge sampling [7]).
//!
//! ```text
//! cargo run --release -p triangles --example beyond_the_paper
//! ```

use triangles::core::approx::{doulion, wedge_sampling};
use triangles::core::count::{Backend, CountRequest, GpuOptions};
use triangles::core::gpu::split::count_split;
use triangles::gen::kronecker::Rmat;
use triangles::gen::Seed;
use triangles::simt::DeviceConfig;

fn main() {
    let graph = Rmat::scale(11).edge_factor(24).generate(Seed(9));
    let exact = CountRequest::new(Backend::CpuForward)
        .run(&graph)
        .expect("exact")
        .triangles;
    println!(
        "graph: {} nodes, {} edges, {} triangles (exact)\n",
        graph.num_nodes(),
        graph.num_edges(),
        exact
    );

    // --- §VI direction 1: splitting past the memory wall -------------------
    // A device too small for the whole graph, even with the §III-D6
    // fallback; splitting into 6 vertex ranges bounds every subproblem.
    let small = DeviceConfig::gtx_980().with_memory_capacity(
        triangles::core::gpu::preprocess::fallback_path_peak_bytes(&graph) / 2 + 256 * 1024,
    );
    let opts = GpuOptions::new(small);
    let whole = triangles::core::gpu::pipeline::run_gpu_pipeline(&graph, &opts);
    println!(
        "whole graph on the small device: {}",
        match &whole {
            Err(e) => format!("fails as expected ({e})"),
            Ok(_) => "unexpectedly fits".into(),
        }
    );
    let split = count_split(&graph, &opts, 6).expect("split run");
    assert_eq!(split.triangles, exact);
    println!(
        "split into 6 ranges: {} triangles across {} subproblems, largest {} arcs ✓\n",
        split.triangles, split.subproblems, split.max_subproblem_arcs
    );

    // --- §VI direction 2: hybrid high-degree handling ----------------------
    for backend in [
        Backend::CpuHybrid { threshold: None },
        Backend::CpuHybrid {
            threshold: Some(64),
        },
    ] {
        let label = backend.label();
        let n = CountRequest::new(backend)
            .run(&graph)
            .expect("hybrid")
            .triangles;
        assert_eq!(n, exact);
        println!("{label:<24}: {n} ✓");
    }

    // --- §V alternative: approximation ------------------------------------
    println!();
    for p in [0.8, 0.5, 0.3] {
        let est = doulion(&graph, p, 1234).expect("doulion");
        println!(
            "doulion(p={p:.1})         : {est:>14.0}  ({:+.2}% vs exact)",
            100.0 * (est - exact as f64) / exact as f64
        );
    }
    for samples in [1_000, 10_000, 100_000] {
        let est = wedge_sampling(&graph, samples, 99).expect("wedges");
        println!(
            "wedge-sampling({samples:>6}) : {est:>14.0}  ({:+.2}% vs exact)",
            100.0 * (est - exact as f64) / exact as f64
        );
    }
    println!("\nApproximations land within a few percent — the trade-off §V describes.");
}
