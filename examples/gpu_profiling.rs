//! Profile the counting kernel like the paper's Table II session, then
//! toggle each §III-D optimization off to see its cost — all on the
//! simulated GTX 980.
//!
//! ```text
//! cargo run --release --example gpu_profiling
//! ```

use triangles::core::count::GpuOptions;
use triangles::core::gpu::pipeline::run_gpu_pipeline;
use triangles::core::{EdgeLayout, LoopVariant};
use triangles::gen::barabasi_albert::BarabasiAlbert;
use triangles::gen::Seed;
use triangles::simt::DeviceConfig;

fn main() {
    // Barabási–Albert: the workload with the lowest cache hit rate in
    // Table II — preferential attachment produces hub lists too large for
    // the texture cache.
    let graph = BarabasiAlbert::new(4_000, 32).generate(Seed(11));
    println!(
        "graph: barabasi-albert, {} nodes, {} edges\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    let device = DeviceConfig::gtx_980().with_unlimited_memory();
    let published = GpuOptions::new(device);
    let base = run_gpu_pipeline(&graph, &published).expect("pipeline");
    println!("published configuration (SoA, read-avoiding loop, texture cache):");
    println!(
        "  kernel time          : {:>9.3} ms",
        base.kernel.time_s * 1e3
    );
    println!(
        "  texture cache hit    : {:>8.2} %",
        base.kernel.tex.hit_rate() * 100.0
    );
    println!(
        "  achieved bandwidth   : {:>9.2} GB/s",
        base.kernel.achieved_bandwidth_gbs
    );
    println!(
        "  DRAM traffic         : {:>9.2} MiB",
        base.kernel.dram_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "  warp divergence      : {:>8.2} % of warp steps",
        100.0 * base.kernel.divergent_steps as f64 / base.kernel.warp_steps as f64
    );

    println!("\nswitching each optimization off (paper §III-D):");
    let toggles: Vec<(&str, GpuOptions)> = {
        let mut aos = published.clone();
        aos.layout = EdgeLayout::AoS;
        let mut prelim = published.clone();
        prelim.kernel = LoopVariant::Preliminary;
        let mut nocache = published.clone();
        nocache.use_texture_cache = false;
        let mut split = published;
        split.warp_split = 2;
        vec![
            ("array-of-structures layout (no unzip)", aos),
            ("preliminary merge loop (re-reads both heads)", prelim),
            ("no texture cache (no const __restrict__)", nocache),
            ("half warps (III-D5 experiment)", split),
        ]
    };
    for (label, opts) in toggles {
        let run = run_gpu_pipeline(&graph, &opts).expect("pipeline");
        assert_eq!(run.triangles, base.triangles);
        let delta = run.kernel.time_s / base.kernel.time_s;
        println!(
            "  {label:<46} kernel {:>8.3} ms  ({:+.1} % vs published)",
            run.kernel.time_s * 1e3,
            (delta - 1.0) * 100.0
        );
    }
    println!("\ntriangles: {}", base.triangles);
}
