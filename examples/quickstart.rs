//! Quickstart: generate a graph, count its triangles on the CPU baseline
//! and on the simulated GPU, and print what the paper's Table I would show
//! for it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use triangles::core::count::{Backend, CountRequest};
use triangles::gen::kronecker::Rmat;
use triangles::gen::Seed;
use triangles::graph::GraphStats;

fn main() {
    // A Kronecker R-MAT graph like the paper's synthetic suite: 2^12
    // vertices, ~16 undirected edges per vertex.
    let graph = Rmat::scale(12).edge_factor(16).generate(Seed(42));
    let stats = GraphStats::from_edge_array(&graph);
    println!(
        "graph: {} nodes, {} edges, max degree {}",
        stats.num_nodes, stats.num_edges, stats.max_degree
    );

    // The paper's CPU baseline: the sequential forward algorithm.
    let cpu = CountRequest::new(Backend::CpuForward)
        .run(&graph)
        .expect("cpu count");
    println!(
        "cpu-forward       : {:>12} triangles in {:8.2} ms (measured)",
        cpu.triangles,
        cpu.seconds * 1e3
    );

    // The paper's contribution: the parallel forward algorithm on a
    // (simulated) GTX 980.
    let gpu = CountRequest::new(Backend::gpu_gtx980())
        .run(&graph)
        .expect("gpu count");
    let report = gpu.gpu.as_ref().expect("single-GPU run carries a report");
    println!(
        "gpu-sim (GTX 980) : {:>12} triangles in {:8.2} ms (simulated), speedup {:.1}x",
        gpu.triangles,
        gpu.seconds * 1e3,
        cpu.seconds / gpu.seconds
    );
    println!(
        "   kernel: {:.2} ms, texture-cache hit rate {:.1}%, {:.1} GB/s DRAM",
        report.kernel.time_s * 1e3,
        report.kernel.tex.hit_rate() * 100.0,
        report.kernel.achieved_bandwidth_gbs
    );
    println!(
        "   preprocessing fraction: {:.2} (drives the multi-GPU ceiling, paper §III-E)",
        report.preprocess_fraction
    );

    assert_eq!(cpu.triangles, gpu.triangles, "backends must agree");
    println!("cpu and gpu agree ✓");
}
