//! Network analysis with clustering coefficients — the application that
//! motivates fast triangle counting (paper §I).
//!
//! Builds a synthetic co-authorship network (a union of per-paper cliques,
//! like the Citeseer/DBLP graphs of the evaluation), computes per-author
//! clustering coefficients and the global transitivity ratio, and ranks the
//! most and least clustered collaborators.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use triangles::core::clustering::{average_clustering, local_clustering, transitivity};
use triangles::core::count::{Backend, CountRequest};
use triangles::gen::copaper::CoPaper;
use triangles::gen::Seed;

fn main() {
    let network = CoPaper::new(2_000, 1_600)
        .author_range(2, 14)
        .core_fraction(0.25)
        .generate(Seed(7));
    println!(
        "co-authorship network: {} authors, {} collaboration edges",
        network.num_nodes(),
        network.num_edges()
    );

    let triangles = CountRequest::new(Backend::CpuParallel)
        .graph_name("co-authorship")
        .run(&network)
        .expect("count")
        .triangles;
    println!("triangles (collaboration cliques of three): {triangles}");

    let c = local_clustering(&network).expect("clustering");
    let avg = average_clustering(&network).expect("avg");
    let t = transitivity(&network).expect("transitivity");
    println!("average clustering coefficient: {avg:.4}");
    println!("transitivity ratio:             {t:.4}");

    // Rank authors by clustering among those with enough collaborators for
    // the coefficient to mean something.
    let degrees = network.degrees();
    let mut ranked: Vec<(u32, f64, u32)> = c
        .iter()
        .enumerate()
        .filter(|&(v, _)| degrees[v] >= 6)
        .map(|(v, &cv)| (v as u32, cv, degrees[v]))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("\nmost clustered authors (degree >= 6):");
    for (v, cv, d) in ranked.iter().take(5) {
        println!("  author {v:>5}: clustering {cv:.3}, {d} collaborators");
    }
    println!("least clustered authors (degree >= 6):");
    for (v, cv, d) in ranked.iter().rev().take(5) {
        println!("  author {v:>5}: clustering {cv:.3}, {d} collaborators");
    }

    // Sanity: clique-union graphs are strongly clustered.
    assert!(
        avg > 0.1,
        "co-paper networks should be clustered (got {avg})"
    );
}
