//! A miniature of the paper's Figure 1: time vs. graph size on a ladder of
//! Kronecker R-MAT graphs, CPU baseline against the simulated GTX 980.
//!
//! ```text
//! cargo run --release --example kronecker_scaling
//! ```

use std::time::Instant;

use triangles::core::count::{Backend, CountRequest};
use triangles::core::cpu::count_forward;
use triangles::gen::kronecker::Rmat;
use triangles::gen::Seed;

fn main() {
    println!(
        "{:>6} {:>9} {:>11} {:>12} {:>13} {:>9}",
        "scale", "nodes", "edges", "cpu [ms]", "gtx980 [ms]", "speedup"
    );
    for scale in 8..=13u32 {
        let graph = Rmat::scale(scale).edge_factor(20).generate(Seed(1));

        let start = Instant::now();
        let cpu_triangles = count_forward(&graph).expect("cpu");
        let cpu_s = start.elapsed().as_secs_f64();

        let gpu = CountRequest::new(Backend::gpu_gtx980())
            .run(&graph)
            .expect("gpu");
        assert_eq!(gpu.triangles, cpu_triangles);

        println!(
            "{:>6} {:>9} {:>11} {:>12.2} {:>13.3} {:>8.1}x",
            scale,
            graph.num_nodes(),
            graph.num_edges(),
            cpu_s * 1e3,
            gpu.seconds * 1e3,
            cpu_s / gpu.seconds
        );
    }
    println!("\nBoth series grow near-linearly in m (the forward algorithm is");
    println!("O(m^1.5) worst case but R-MAT graphs stay far from the bound);");
    println!("the GPU stays an order of magnitude below the CPU — Figure 1's shape.");
}
