//! `tcount` — count triangles in a graph file.
//!
//! ```text
//! tcount <path> [--format text|binary|metis] [--backend NAME]
//!               [--clustering] [--validate] [--trace FILE]
//!               [--profile [FILE]]
//!
//! backends: forward (default) | edge-iterator | node-iterator | hashed |
//!           parallel | hybrid | gtx980 | c2050 | nvs5200m | 4xc2050
//! ```
//!
//! `--trace FILE` (simulated GPU backends, single- or multi-device) writes
//! a Chrome Trace Event file of the device's phases — nested spans over
//! the leaf operations, one trace thread per device — viewable in
//! `chrome://tracing` or Perfetto.
//!
//! `--profile [FILE]` (simulated GPU backends) prints the nvprof-style
//! per-phase hardware-counter table — the eight §III-B preprocessing steps
//! plus the counting kernel, with DRAM traffic, achieved bandwidth,
//! texture/L2 hit rates, divergence serialization, issue stalls, and
//! occupancy — and, when FILE is given, writes the full report as JSON.
//!
//! Reads an edge list (SNAP-style text by default), counts its triangles
//! with the chosen backend, and optionally reports clustering statistics —
//! the workflow the paper's introduction motivates.

use std::process::ExitCode;

use triangles::core::clustering::{average_clustering, transitivity};
use triangles::core::count::{count_triangles_detailed, Backend, TriangleCount};
use triangles::core::gpu::multi::{merged_profile, run_multi_gpu_profiled};
use triangles::core::gpu::pipeline::{run_gpu_pipeline_profiled, RunTrace};
use triangles::graph::{io, EdgeArray, GraphStats};
use triangles::simt::trace::{write_chrome_trace_spanned, TraceThread};

struct Args {
    path: String,
    format: Format,
    backend: Backend,
    clustering: bool,
    validate: bool,
    trace: Option<String>,
    /// `Some(None)` = print the profile table; `Some(Some(file))` = also
    /// write the JSON report.
    profile: Option<Option<String>>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Binary,
    Metis,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tcount <path> [--format text|binary|metis] [--backend NAME]\n\
         \x20             [--clustering] [--validate] [--trace FILE] [--profile [FILE]]\n\
         backends: forward | edge-iterator | node-iterator | hashed | parallel |\n\
         \x20         hybrid | gtx980 | c2050 | nvs5200m | 4xc2050"
    );
    ExitCode::from(2)
}

fn parse_backend(name: &str) -> Option<Backend> {
    Some(match name {
        "forward" => Backend::CpuForward,
        "edge-iterator" => Backend::CpuEdgeIterator,
        "node-iterator" => Backend::CpuNodeIterator,
        "hashed" => Backend::CpuForwardHashed,
        "parallel" => Backend::CpuParallel,
        "hybrid" => Backend::CpuHybrid { threshold: None },
        "gtx980" => Backend::gpu_gtx980(),
        "c2050" => Backend::gpu_tesla_c2050(),
        "nvs5200m" => Backend::gpu_nvs_5200m(),
        "4xc2050" => Backend::multi_gpu_c2050(4),
        _ => return None,
    })
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1).peekable();
    let path = args.next().ok_or("missing input path")?;
    if path == "-h" || path == "--help" {
        return Err(String::new());
    }
    let mut parsed = Args {
        path,
        format: Format::Text,
        backend: Backend::CpuForward,
        clustering: false,
        validate: false,
        trace: None,
        profile: None,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--format" => {
                parsed.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("binary") => Format::Binary,
                    Some("metis") => Format::Metis,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--backend" => {
                let name = args.next().ok_or("missing backend name")?;
                parsed.backend =
                    parse_backend(&name).ok_or_else(|| format!("unknown backend {name:?}"))?;
            }
            "--clustering" => parsed.clustering = true,
            "--validate" => parsed.validate = true,
            "--trace" => parsed.trace = Some(args.next().ok_or("missing trace path")?),
            "--profile" => {
                // The FILE operand is optional: absent or another flag
                // means print-only.
                let file = match args.peek() {
                    Some(next) if !next.starts_with("--") => args.next(),
                    _ => None,
                };
                parsed.profile = Some(file);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(parsed)
}

/// Write the nested Chrome trace for one or more device runs.
fn write_trace(traces: &[RunTrace], path: &str) -> Result<(), String> {
    let threads: Vec<TraceThread<'_>> = traces
        .iter()
        .map(|t| TraceThread {
            name: &t.device_name,
            log: &t.log,
            spans: &t.spans,
        })
        .collect();
    write_chrome_trace_spanned(&threads, path).map_err(|e| format!("writing trace: {e}"))?;
    println!("trace written to {path}");
    Ok(())
}

/// Print the per-phase table and optionally persist the JSON report.
fn emit_profile(
    profile: &triangles::simt::ProfileReport,
    file: &Option<String>,
) -> Result<(), String> {
    print!(
        "{}",
        triangles::bench::profile::phase_table(profile).render()
    );
    if let Some(path) = file {
        std::fs::write(path, profile.to_json()).map_err(|e| format!("writing profile: {e}"))?;
        println!("profile written to {path}");
    }
    Ok(())
}

/// Run a GPU backend through the profiled entry points, honoring `--trace`
/// and `--profile`.
fn run_gpu_observed(graph: &EdgeArray, args: &Args) -> Result<TriangleCount, String> {
    match &args.backend {
        Backend::Gpu(opts) => {
            let (report, trace) =
                run_gpu_pipeline_profiled(graph, opts).map_err(|e| format!("counting: {e}"))?;
            if let Some(path) = &args.trace {
                write_trace(std::slice::from_ref(&trace), path)?;
            }
            if let Some(file) = &args.profile {
                emit_profile(&trace.profile, file)?;
            }
            Ok(TriangleCount {
                triangles: report.triangles,
                backend: args.backend.label(),
                seconds: report.total_s,
                gpu: Some(report),
            })
        }
        Backend::MultiGpu { options, devices } => {
            let (report, traces) = run_multi_gpu_profiled(graph, options, *devices)
                .map_err(|e| format!("counting: {e}"))?;
            if let Some(path) = &args.trace {
                write_trace(&traces, path)?;
            }
            if let Some(file) = &args.profile {
                emit_profile(&merged_profile(&traces), file)?;
            }
            Ok(TriangleCount {
                triangles: report.triangles,
                backend: args.backend.label(),
                seconds: report.total_s,
                gpu: None,
            })
        }
        _ => Err("--trace/--profile require a simulated-GPU backend".into()),
    }
}

fn run(args: Args) -> Result<(), String> {
    let graph: EdgeArray = match args.format {
        Format::Text => io::read_text(&args.path),
        Format::Binary => io::read_binary(&args.path),
        Format::Metis => io::read_metis(&args.path),
    }
    .map_err(|e| format!("loading {}: {e}", args.path))?;

    if args.validate {
        graph.validate().map_err(|e| format!("validation: {e}"))?;
        println!("validation: ok");
    }

    let stats = GraphStats::from_edge_array(&graph);
    println!(
        "graph: {} nodes, {} edges, max degree {}, avg degree {:.2}",
        stats.num_nodes, stats.num_edges, stats.max_degree, stats.avg_degree
    );

    // Observability requests route GPU backends through the profiled
    // pipeline variants.
    let result = if args.trace.is_some() || args.profile.is_some() {
        run_gpu_observed(&graph, &args)?
    } else {
        count_triangles_detailed(&graph, args.backend).map_err(|e| format!("counting: {e}"))?
    };
    println!(
        "triangles: {} ({} in {:.3} ms)",
        result.triangles,
        result.backend,
        result.seconds * 1e3
    );
    if let Some(report) = &result.gpu {
        println!(
            "  gpu: kernel {:.3} ms, tex hit {:.1}%, {:.1} GB/s, preprocessing fraction {:.2}{}",
            report.kernel.time_s * 1e3,
            report.kernel.tex.hit_rate() * 100.0,
            report.kernel.achieved_bandwidth_gbs,
            report.preprocess_fraction,
            if report.used_cpu_fallback {
                " (CPU-preprocessing fallback)"
            } else {
                ""
            }
        );
    }

    if args.clustering {
        let avg = average_clustering(&graph).map_err(|e| e.to_string())?;
        let t = transitivity(&graph).map_err(|e| e.to_string())?;
        println!("average clustering coefficient: {avg:.6}");
        println!("transitivity ratio:             {t:.6}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage()
        }
    }
}
