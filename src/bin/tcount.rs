//! `tcount` — count triangles in a graph file.
//!
//! ```text
//! tcount <path> [--format text|binary|metis] [--backend NAME]
//!               [--clustering] [--validate] [--trace FILE]
//!               [--profile [FILE]] [--sanitize [paranoid]] [--verify]
//! tcount batch <jobfile> [--scale smoke|bench|large] [--workers N]
//!                        [--json FILE] [--metrics [FILE]] [--prom FILE]
//!                        [--trace FILE] [--shed]
//! tcount sanitize-selftest
//! tcount verify-selftest
//!
//! backends: forward (default) | edge-iterator | node-iterator | hashed |
//!           parallel | hybrid[:<tau>] | gtx980 | c2050 | nvs5200m |
//!           <n>x<device> | <device>/split:<parts> |
//!           cluster:<n>x<m>[:2d]/<device>
//!
//! Any simulated-GPU backend takes a `/balanced[:<t>x<w>]` suffix to turn
//! on the workload-balanced kernel scheduler: `gtx980/balanced` auto-tunes
//! the bin plan, `gtx980/balanced:16x8` splits at work 16 with a
//! virtual-warp width of 8 (see DESIGN.md "Kernel scheduling"), and
//! `gtx980/balanced+hash` gives the heaviest bin the shared-memory
//! hash-intersection kernel. A `/reorder` suffix (after the scheduling
//! clause) relabels vertices by descending degree before orientation, and
//! a `/sanitize[:paranoid]` suffix runs the pipeline under the
//! compute-sanitizer layer (DESIGN.md §12), and a final `/verify` suffix
//! turns on the static kernel-launch verifier (DESIGN.md §15): every
//! launch's declared access contract is proven in-bounds and race-free
//! against the live allocation map before it runs.
//!
//! `cluster:<n>x<m>[:2d]/<device>` runs the sharded cluster engine on a
//! simulated grid of `n` nodes × `m` devices: the oriented arcs are
//! partitioned (1D owner ranges by default, `:2d` for the owner × target
//! grid), each device holds only its shard, and remote nodes pay a modeled
//! interconnect (DESIGN.md §14). Composes with the same suffixes:
//! `cluster:2x2/gtx980/balanced+hash/reorder`.
//! ```
//!
//! `<path>` may be `suite:<name>` (e.g. `suite:dblp`, `suite:kronecker-9`)
//! to generate a smoke-scale evaluation-suite graph in memory instead of
//! reading a file.
//!
//! `--sanitize [paranoid]` (simulated GPU backends) is equivalent to the
//! `/sanitize` backend suffix: the run executes with memcheck, initcheck,
//! and racecheck shadow tracking, the finding report is printed as JSON,
//! and the exit code is nonzero if there is at least one finding. Lints
//! (uncoalesced loops, divergence-heavy warps) are advisory and never fail
//! the run.
//!
//! `tcount sanitize-selftest` runs the seeded-bug kernels (out-of-bounds
//! read, uninitialized read, write-write race), prints their reports, and
//! fails unless every seeded bug was detected — the CI gate that proves
//! the sanitizer actually fires.
//!
//! `--verify` (simulated GPU backends) is equivalent to the `/verify`
//! backend suffix: the static verifier report is printed as JSON and the
//! exit code is nonzero if there is at least one finding. `tcount
//! verify-selftest` runs kernels with seeded dishonest contracts
//! (footprint too narrow, false disjointness claim, shared-budget
//! understatement, statically out-of-bounds footprint) and fails unless
//! every lie is caught — the CI gate that proves the verifier actually
//! fires.
//!
//! `--trace FILE` (simulated GPU backends, single- or multi-device) writes
//! a Chrome Trace Event file of the device's phases — nested spans over
//! the leaf operations, one trace thread per device — viewable in
//! `chrome://tracing` or Perfetto.
//!
//! `--profile [FILE]` (simulated GPU backends) prints the nvprof-style
//! per-phase hardware-counter table — the eight §III-B preprocessing steps
//! plus the counting kernel, with DRAM traffic, achieved bandwidth,
//! texture/L2 hit rates, divergence serialization, issue stalls, and
//! occupancy — and, when FILE is given, writes the full report as JSON.
//!
//! Reads an edge list (SNAP-style text by default), counts its triangles
//! with the chosen backend, and optionally reports clustering statistics —
//! the workflow the paper's introduction motivates.
//!
//! `tcount batch <jobfile>` runs many jobs through the `tc-engine` batched
//! counting engine: repeated counts of the same graph reuse one prepared
//! device session (see the jobfile format in `tc_engine::jobfile`).
//! `--metrics [FILE]` emits the engine's telemetry snapshot as canonical
//! JSON (stdout when FILE is omitted), `--prom FILE` writes the same
//! snapshot as Prometheus text exposition, and `--trace FILE` writes the
//! unified Chrome trace: one trace thread per request, engine stage spans
//! nesting the kernel profiler's spans. Set `TC_TELEMETRY_CI=1` to null
//! the advisory (host-measured) metrics section, making the metrics and
//! trace artifacts byte-identical across runs and `--workers` values.
//! `--shed` refuses jobs at admission instead of blocking when the queue
//! is full (sheds are counted in the advisory `engine_shed_total`).

#![forbid(unsafe_code)]

use std::process::ExitCode;

use triangles::core::clustering::{average_clustering, transitivity};
use triangles::core::count::{Backend, CountRequest, TriangleCount};
use triangles::core::gpu::cluster::run_cluster_profiled;
use triangles::core::gpu::multi::{merged_profile, run_multi_gpu_profiled};
use triangles::core::gpu::pipeline::{run_gpu_pipeline_profiled, RunTrace};
use triangles::engine::{parse_jobfile, Admission, Engine, EngineConfig};
use triangles::gen::Scale;
use triangles::graph::{io, EdgeArray, GraphStats};
use triangles::simt::sanitizer::selftest;
use triangles::simt::trace::{write_chrome_trace_spanned, TraceThread};
use triangles::simt::verifier::selftest as verify_selftest;
use triangles::simt::SanitizerMode;

struct Args {
    path: String,
    format: Format,
    backend: Backend,
    clustering: bool,
    validate: bool,
    trace: Option<String>,
    /// `Some(None)` = print the profile table; `Some(Some(file))` = also
    /// write the JSON report.
    profile: Option<Option<String>>,
    /// `--sanitize [paranoid]`: requested sanitizer mode, folded into the
    /// backend token.
    sanitize: Option<SanitizerMode>,
    /// `--verify`: run the static launch verifier, folded into the backend
    /// token.
    verify: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Binary,
    Metis,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tcount <path> [--format text|binary|metis] [--backend NAME]\n\
         \x20             [--clustering] [--validate] [--trace FILE] [--profile [FILE]]\n\
         \x20             [--sanitize [paranoid]]\n\
         \x20      tcount batch <jobfile> [--scale smoke|bench|large] [--workers N]\n\
         \x20                             [--json FILE] [--metrics [FILE]] [--prom FILE]\n\
         \x20                             [--trace FILE] [--shed]\n\
         \x20      tcount sanitize-selftest\n\
         <path> may be suite:<name> to generate a smoke-scale suite graph\n\
         backends: forward | edge-iterator | node-iterator | hashed | parallel |\n\
         \x20         hybrid[:<tau>] | gtx980 | c2050 | nvs5200m | <n>x<device> |\n\
         \x20         <device>/split:<parts> | cluster:<n>x<m>[:2d]/<device>\n\
         \x20         GPU backends accept /balanced[:<t>x<w>] or /balanced+hash\n\
         \x20         for the workload-balanced kernel scheduler, /reorder for\n\
         \x20         degree-descending relabeling, and /sanitize[:paranoid]\n\
         \x20         for the compute-sanitizer layer; cluster:<n>x<m> shards\n\
         \x20         the graph across n nodes x m devices (\":2d\" = 2D grid)"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1).peekable();
    let path = args.next().ok_or("missing input path")?;
    if path == "-h" || path == "--help" {
        return Err(String::new());
    }
    let mut parsed = Args {
        path,
        format: Format::Text,
        backend: Backend::CpuForward,
        clustering: false,
        validate: false,
        trace: None,
        profile: None,
        sanitize: None,
        verify: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--format" => {
                parsed.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("binary") => Format::Binary,
                    Some("metis") => Format::Metis,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--backend" => {
                let name = args.next().ok_or("missing backend name")?;
                parsed.backend = name.parse().map_err(|e| format!("{e}"))?;
            }
            "--clustering" => parsed.clustering = true,
            "--validate" => parsed.validate = true,
            "--trace" => parsed.trace = Some(args.next().ok_or("missing trace path")?),
            "--profile" => {
                // The FILE operand is optional: absent or another flag
                // means print-only.
                let file = match args.peek() {
                    Some(next) if !next.starts_with("--") => args.next(),
                    _ => None,
                };
                parsed.profile = Some(file);
            }
            "--sanitize" => {
                // The mode operand is optional: absent or another flag
                // means plain Check.
                parsed.sanitize = Some(match args.peek().map(String::as_str) {
                    Some("paranoid") => {
                        args.next();
                        SanitizerMode::Paranoid
                    }
                    _ => SanitizerMode::Check,
                });
            }
            "--verify" => parsed.verify = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(parsed)
}

/// Write the nested Chrome trace for one or more device runs.
fn write_trace(traces: &[RunTrace], path: &str) -> Result<(), String> {
    let threads: Vec<TraceThread<'_>> = traces
        .iter()
        .map(|t| TraceThread {
            name: &t.device_name,
            log: &t.log,
            spans: &t.spans,
        })
        .collect();
    write_chrome_trace_spanned(&threads, path).map_err(|e| format!("writing trace: {e}"))?;
    println!("trace written to {path}");
    Ok(())
}

/// Print the per-phase table and optionally persist the JSON report.
fn emit_profile(
    profile: &triangles::simt::ProfileReport,
    file: &Option<String>,
) -> Result<(), String> {
    print!(
        "{}",
        triangles::bench::profile::phase_table(profile).render()
    );
    if let Some(path) = file {
        std::fs::write(path, profile.to_json()).map_err(|e| format!("writing profile: {e}"))?;
        println!("profile written to {path}");
    }
    Ok(())
}

/// Run a GPU backend through the profiled entry points, honoring `--trace`
/// and `--profile`.
fn run_gpu_observed(graph: &EdgeArray, args: &Args) -> Result<TriangleCount, String> {
    match &args.backend {
        Backend::Gpu(opts) => {
            let (report, trace) =
                run_gpu_pipeline_profiled(graph, opts).map_err(|e| format!("counting: {e}"))?;
            if let Some(path) = &args.trace {
                write_trace(std::slice::from_ref(&trace), path)?;
            }
            if let Some(file) = &args.profile {
                emit_profile(&trace.profile, file)?;
            }
            Ok(TriangleCount {
                triangles: report.triangles,
                backend: args.backend.label(),
                seconds: report.total_s,
                profile: Some(trace.profile),
                sanitizer: report.sanitizer.clone(),
                verifier: report.verifier.clone(),
                gpu: Some(report),
            })
        }
        Backend::MultiGpu { options, devices } => {
            let (report, traces) = run_multi_gpu_profiled(graph, options, *devices)
                .map_err(|e| format!("counting: {e}"))?;
            if let Some(path) = &args.trace {
                write_trace(&traces, path)?;
            }
            if let Some(file) = &args.profile {
                emit_profile(&merged_profile(&traces), file)?;
            }
            Ok(TriangleCount {
                triangles: report.triangles,
                backend: args.backend.label(),
                seconds: report.total_s,
                profile: Some(merged_profile(&traces)),
                sanitizer: report.sanitizer,
                verifier: report.verifier,
                gpu: None,
            })
        }
        Backend::Cluster {
            options,
            nodes,
            devices_per_node,
            partition,
        } => {
            let topology = triangles::simt::ClusterTopology::new(*nodes, *devices_per_node);
            let (report, traces) = run_cluster_profiled(graph, options, topology, *partition)
                .map_err(|e| format!("counting: {e}"))?;
            if let Some(path) = &args.trace {
                write_trace(&traces, path)?;
            }
            if let Some(file) = &args.profile {
                emit_profile(&merged_profile(&traces), file)?;
            }
            Ok(TriangleCount {
                triangles: report.triangles,
                backend: args.backend.label(),
                seconds: report.total_s,
                profile: Some(merged_profile(&traces)),
                sanitizer: report.sanitizer,
                verifier: report.verifier,
                gpu: None,
            })
        }
        _ => Err("--trace/--profile require a simulated-GPU backend".into()),
    }
}

/// Resolve a `suite:<name>` pseudo-path to a generated smoke-scale suite
/// graph, so CI gates need no graph files on disk.
fn suite_graph(name: &str) -> Result<EdgeArray, String> {
    let scale = Scale::Smoke;
    for spec in triangles::gen::GraphSpec::all() {
        if spec.name(scale) == name {
            return Ok(spec.generate(scale, triangles::gen::suite::SUITE_SEED));
        }
    }
    let names: Vec<String> = triangles::gen::GraphSpec::all()
        .iter()
        .map(|s| s.name(scale))
        .collect();
    Err(format!(
        "unknown suite graph {name:?} (available: {})",
        names.join(", ")
    ))
}

fn run(mut args: Args) -> Result<(), String> {
    if let Some(mode) = args.sanitize {
        if !args.backend.set_sanitizer(mode) {
            return Err("--sanitize requires a simulated-GPU backend".into());
        }
    }
    if args.verify && !args.backend.set_verify(true) {
        return Err("--verify requires a simulated-GPU backend".into());
    }
    let graph: EdgeArray = if let Some(name) = args.path.strip_prefix("suite:") {
        suite_graph(name)?
    } else {
        match args.format {
            Format::Text => io::read_text(&args.path),
            Format::Binary => io::read_binary(&args.path),
            Format::Metis => io::read_metis(&args.path),
        }
        .map_err(|e| format!("loading {}: {e}", args.path))?
    };

    if args.validate {
        graph.validate().map_err(|e| format!("validation: {e}"))?;
        println!("validation: ok");
    }

    let stats = GraphStats::from_edge_array(&graph);
    println!(
        "graph: {} nodes, {} edges, max degree {}, avg degree {:.2}",
        stats.num_nodes, stats.num_edges, stats.max_degree, stats.avg_degree
    );

    // Observability requests route GPU backends through the profiled
    // pipeline variants.
    let result = if args.trace.is_some() || args.profile.is_some() {
        run_gpu_observed(&graph, &args)?
    } else {
        CountRequest::new(args.backend.clone())
            .graph_name(&args.path)
            .run(&graph)
            .map_err(|e| format!("counting: {e}"))?
    };
    println!(
        "triangles: {} ({} in {:.3} ms)",
        result.triangles,
        result.backend,
        result.seconds * 1e3
    );
    if let Some(report) = &result.gpu {
        println!(
            "  gpu: kernel {:.3} ms, tex hit {:.1}%, {:.1} GB/s, preprocessing fraction {:.2}{}",
            report.kernel.time_s * 1e3,
            report.kernel.tex.hit_rate() * 100.0,
            report.kernel.achieved_bandwidth_gbs,
            report.preprocess_fraction,
            if report.used_cpu_fallback {
                " (CPU-preprocessing fallback)"
            } else {
                ""
            }
        );
    }

    if let Some(report) = &result.sanitizer {
        println!("{}", report.to_json());
        if !report.is_clean() {
            return Err(format!(
                "sanitizer: {} finding(s) (see report above)",
                report.findings.len()
            ));
        }
        println!(
            "sanitizer: clean ({} mode, {} lint(s))",
            report.mode,
            report.lints.len()
        );
    } else if args.backend.sanitizer() != SanitizerMode::Off {
        return Err("sanitizer was requested but produced no report".into());
    }

    if let Some(report) = &result.verifier {
        println!("{}", report.to_json());
        if !report.is_clean() {
            return Err(format!(
                "verifier: {} finding(s) (see report above)",
                report.findings.len()
            ));
        }
        println!(
            "verifier: clean ({} launch(es) checked, {} proven race-free, \
             {} racecheck(s) skipped, {} host pass(es) checked)",
            report.launches_checked,
            report.launches_proven,
            report.racechecks_skipped,
            report.passes_checked
        );
    } else if args.backend.verify() {
        return Err("verifier was requested but produced no report".into());
    }

    if args.clustering {
        let avg = average_clustering(&graph).map_err(|e| e.to_string())?;
        let t = transitivity(&graph).map_err(|e| e.to_string())?;
        println!("average clustering coefficient: {avg:.6}");
        println!("transitivity ratio:             {t:.6}");
    }
    Ok(())
}

struct BatchArgs {
    jobfile: String,
    scale: Scale,
    workers: Option<usize>,
    json: Option<String>,
    /// `Some(None)` = print the metrics JSON; `Some(Some(file))` = write it.
    metrics: Option<Option<String>>,
    /// Write the Prometheus text exposition to this file.
    prom: Option<String>,
    /// Write the unified Chrome trace (engine stages + kernel spans) here.
    trace: Option<String>,
    /// Shed jobs instead of blocking when the queue is full.
    shed: bool,
}

fn parse_batch_args(args: impl Iterator<Item = String>) -> Result<BatchArgs, String> {
    let mut args = args.peekable();
    let jobfile = args.next().ok_or("missing jobfile path")?;
    let mut parsed = BatchArgs {
        jobfile,
        scale: Scale::Smoke,
        workers: None,
        json: None,
        metrics: None,
        prom: None,
        trace: None,
        shed: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                parsed.scale = match args.next().as_deref() {
                    Some("smoke") => Scale::Smoke,
                    Some("bench") => Scale::Bench,
                    Some("large") => Scale::Large,
                    other => return Err(format!("unknown scale {other:?}")),
                }
            }
            "--workers" => {
                let n = args.next().ok_or("missing worker count")?;
                parsed.workers = Some(
                    n.parse::<usize>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| format!("workers must be a positive integer, got {n:?}"))?,
                );
            }
            "--json" => parsed.json = Some(args.next().ok_or("missing json path")?),
            "--metrics" => {
                // The FILE operand is optional, like --profile: absent or
                // another flag means print to stdout.
                let file = match args.peek() {
                    Some(next) if !next.starts_with("--") => args.next(),
                    _ => None,
                };
                parsed.metrics = Some(file);
            }
            "--prom" => parsed.prom = Some(args.next().ok_or("missing prometheus path")?),
            "--trace" => parsed.trace = Some(args.next().ok_or("missing trace path")?),
            "--shed" => parsed.shed = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(parsed)
}

/// `tcount batch <jobfile>`: run a jobfile through the batched engine.
fn run_batch_cmd(args: &BatchArgs) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.jobfile)
        .map_err(|e| format!("reading {}: {e}", args.jobfile))?;
    let jobs = parse_jobfile(&text, args.scale).map_err(|e| e.to_string())?;
    let mut config = EngineConfig::default();
    if let Some(w) = args.workers {
        config.workers = w;
    }
    if args.shed {
        config.admission = Admission::Shed;
    }
    println!(
        "batch: {} jobs, {} workers, queue {} slots, cache {} sessions",
        jobs.len(),
        config.workers,
        config.queue_capacity,
        config.cache_capacity
    );
    let engine = Engine::new(config);
    let report = engine.run_batch(jobs);
    let mut failures = 0usize;
    for job in &report.jobs {
        match &job.result {
            Ok(r) => println!(
                "  {:<40} {:>12} triangles  {:>10.3} ms  {}",
                job.name,
                r.triangles,
                r.seconds * 1e3,
                if r.cache_hit { "cache-hit" } else { "prepared" }
            ),
            Err(e) => {
                failures += 1;
                println!("  {:<40} error: {e}", job.name);
            }
        }
    }
    println!(
        "{} ok, {} failed; {} cache hits, {} prepares; {} devices created",
        report.jobs.len() - failures,
        failures,
        report.cache_hits,
        report.cache_misses,
        report.devices_created
    );
    if let Some(path) = &args.json {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("report written to {path}");
    }
    // CI mode (TC_TELEMETRY_CI=1) nulls the advisory section so the
    // metrics artifact bytes are identical across hosts and worker counts.
    let include_advisory = !std::env::var("TC_TELEMETRY_CI").is_ok_and(|v| v == "1");
    if let Some(file) = &args.metrics {
        let json = report.metrics_json(include_advisory);
        match file {
            Some(path) => {
                std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
                println!("metrics written to {path}");
            }
            None => print!("{json}"),
        }
    }
    if let Some(path) = &args.prom {
        std::fs::write(path, report.metrics_prometheus())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("prometheus exposition written to {path}");
    }
    if let Some(path) = &args.trace {
        std::fs::write(path, report.trace_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("unified trace written to {path}");
    }
    if failures > 0 {
        Err(format!("{failures} job(s) failed"))
    } else {
        Ok(())
    }
}

/// `tcount sanitize-selftest`: run the seeded-bug kernels and fail unless
/// every one of them was detected.
fn run_selftest_cmd() -> ExitCode {
    let bugs = selftest::run();
    println!("{}", selftest::to_json(&bugs));
    if selftest::all_detected(&bugs) {
        println!("sanitize-selftest: all {} seeded bugs detected", bugs.len());
        ExitCode::SUCCESS
    } else {
        let missed: Vec<&str> = bugs
            .iter()
            .filter(|b| !b.detected)
            .map(|b| b.name)
            .collect();
        eprintln!(
            "error: sanitize-selftest: seeded bug(s) went undetected: {}",
            missed.join(", ")
        );
        ExitCode::FAILURE
    }
}

/// `tcount verify-selftest`: run the seeded dishonest-contract kernels
/// and fail unless every lie was caught.
fn run_verify_selftest_cmd() -> ExitCode {
    let lies = verify_selftest::run();
    println!("{}", verify_selftest::to_json(&lies));
    if verify_selftest::all_detected(&lies) {
        println!(
            "verify-selftest: all {} seeded contract lies detected",
            lies.len()
        );
        ExitCode::SUCCESS
    } else {
        let missed: Vec<&str> = lies
            .iter()
            .filter(|l| !l.detected)
            .map(|l| l.name)
            .collect();
        eprintln!(
            "error: verify-selftest: seeded contract lie(s) went undetected: {}",
            missed.join(", ")
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("sanitize-selftest") {
        return run_selftest_cmd();
    }
    if argv.peek().map(String::as_str) == Some("verify-selftest") {
        return run_verify_selftest_cmd();
    }
    if argv.peek().map(String::as_str) == Some("batch") {
        argv.next();
        return match parse_batch_args(argv) {
            Ok(args) => match run_batch_cmd(&args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                if !e.is_empty() {
                    eprintln!("error: {e}");
                }
                usage()
            }
        };
    }
    match parse_args() {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage()
        }
    }
}
