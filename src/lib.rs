//! # triangles — GPU triangle counting, reproduced in Rust
//!
//! Façade crate for the reproduction of Adam Polak's *Counting Triangles in
//! Large Graphs on GPU* (IPDPSW 2016). It re-exports the workspace crates so
//! downstream users need a single dependency:
//!
//! * [`graph`] — edge arrays, CSR, adjacency lists, I/O ([`tc_graph`]).
//! * [`gen`] — deterministic synthetic graph generators ([`tc_gen`]).
//! * [`simt`] — the SIMT GPU simulator the "GPU" runs on ([`tc_simt`]).
//! * [`core`] — the triangle-counting algorithms themselves ([`tc_core`]).
//! * [`engine`] — the batched counting engine: prepared-session cache,
//!   device pool, bounded queues ([`tc_engine`]).
//!
//! ## Quickstart
//!
//! ```
//! use triangles::gen::{kronecker::Rmat, Seed};
//! use triangles::core::{Backend, CountRequest};
//!
//! // A small Kronecker R-MAT graph, like the paper's synthetic suite.
//! let graph = Rmat::scale(8).edge_factor(8).generate(Seed(42));
//!
//! // Count on the simulated GTX 980 and on the CPU baseline; they agree.
//! let gpu = CountRequest::new(Backend::gpu_gtx980()).run(&graph).unwrap();
//! let cpu = CountRequest::new(Backend::CpuForward).run(&graph).unwrap();
//! assert_eq!(gpu.triangles, cpu.triangles);
//! ```

#![forbid(unsafe_code)]

pub use tc_bench as bench;
pub use tc_core as core;
pub use tc_engine as engine;
pub use tc_gen as gen;
pub use tc_graph as graph;
pub use tc_simt as simt;
pub use tc_telemetry as telemetry;

/// Convenience prelude bringing the common types into scope.
pub mod prelude {
    pub use tc_core::{Backend, CountRequest, TriangleCount};
    pub use tc_gen::Seed;
    pub use tc_graph::{Csr, Edge, EdgeArray, GraphStats};
    pub use tc_simt::DeviceConfig;
}
