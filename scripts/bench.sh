#!/usr/bin/env bash
# Refresh the machine-readable perf artifact at the repo root.
#
# Usage: scripts/bench.sh [--scale smoke|bench|paper] [extra repro flags...]
#
# Runs the `repro bench` matrix (every suite graph x CPU forward, GTX 980,
# GTX 980 balanced) and writes BENCH_<n>.json, the per-PR perf trajectory
# record. Modeled milliseconds are deterministic; host wall milliseconds
# are this machine's.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --workspace
./target/release/repro bench "$@"
