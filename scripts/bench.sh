#!/usr/bin/env bash
# Refresh the machine-readable perf artifact at the repo root.
#
# Usage: scripts/bench.sh [--scale smoke|bench|paper] [extra repro flags...]
#
# Runs the `repro bench` matrix (every suite graph x CPU forward, GTX 980,
# GTX 980 balanced, GTX 980 balanced+hash, and a 2x2 sharded cluster on
# the balanced schedule) and writes BENCH_<n>.json, the
# per-PR perf trajectory record. Modeled milliseconds are deterministic;
# host wall milliseconds
# live in the per-entry advisory section (nulled when TC_TELEMETRY_CI=1).
# The emitted artifact is schema-checked before the script exits.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --workspace

# The artifact lands at --out FILE if given, else BENCH_<seq>.json.
OUT=""
prev=""
for arg in "$@"; do
    if [ "$prev" = "--out" ]; then OUT="$arg"; fi
    prev="$arg"
done

./target/release/repro bench "$@"

if [ -z "$OUT" ]; then
    OUT=$(ls -t BENCH_*.json | head -1)
fi

echo "==> schema check: $OUT"
OUT="$OUT" python3 - <<'PY'
import json, os

path = os.environ["OUT"]
with open(path) as f:
    doc = json.load(f)
assert doc["bench"] == 6, f"{path}: bench seq {doc['bench']} != 6"
assert doc["entries"], f"{path}: no entries"
for e in doc["entries"]:
    assert {"graph", "backend", "triangles", "modeled_ms", "advisory"} <= e.keys(), e
    assert e["modeled_ms"] is None or isinstance(e["modeled_ms"], (int, float)), e
    # Advisory is either null (CI mode) or an object holding only
    # host-measured fields; host_wall_ms must never appear at entry level.
    assert "host_wall_ms" not in e, f"{path}: host_wall_ms outside advisory"
    adv = e["advisory"]
    assert adv is None or set(adv.keys()) == {"host_wall_ms"}, e
print(f"{path}: schema OK ({len(doc['entries'])} entries)")
PY
