#!/usr/bin/env bash
# Bench-regression gate: compare two BENCH_*.json artifacts and fail if
# any graph x backend cell's deterministic modeled_ms regressed beyond
# the threshold.
#
# Usage: scripts/bench_check.sh NEW_BENCH_JSON OLD_BENCH_JSON [REL_TOL]
#
#   NEW_BENCH_JSON  freshly generated artifact (bench >= 3 schema)
#   OLD_BENCH_JSON  prior artifact to compare against (bench >= 3 schema;
#                   the bench-3 flat host_wall_ms layout is accepted)
#   REL_TOL         relative tolerance, default 0.05 (5%)
#
# Only modeled milliseconds are compared: they are simulator-exact and
# deterministic, so any drift is a real perf change, not measurement
# noise. CPU rows (modeled_ms null) and cells new in NEW are skipped;
# cells present in OLD but missing from NEW fail the gate.
set -euo pipefail

if [ "$#" -lt 2 ] || [ "$#" -gt 3 ]; then
    echo "usage: scripts/bench_check.sh NEW_BENCH_JSON OLD_BENCH_JSON [REL_TOL]" >&2
    exit 2
fi

NEW="$1" OLD="$2" TOL="${3:-0.05}" python3 - <<'PY'
import json, os, sys

new_path, old_path, tol = os.environ["NEW"], os.environ["OLD"], float(os.environ["TOL"])

def load_matrix(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("bench", 0) >= 3 and doc["entries"], f"{path}: not a bench artifact"
    return {(e["graph"], e["backend"]): e["modeled_ms"] for e in doc["entries"]}

new, old = load_matrix(new_path), load_matrix(old_path)
failures = []
for (graph, backend), old_ms in sorted(old.items()):
    if old_ms is None:
        continue  # CPU row: host-measured, not gated
    if (graph, backend) not in new:
        failures.append(f"{graph} x {backend}: present in {old_path} but missing from {new_path}")
        continue
    new_ms = new[(graph, backend)]
    if new_ms is None:
        failures.append(f"{graph} x {backend}: modeled_ms vanished (now null)")
        continue
    rel = (new_ms - old_ms) / old_ms
    verdict = "REGRESSED" if rel > tol else "ok"
    line = f"{graph} x {backend}: {old_ms:.6f} -> {new_ms:.6f} ms ({rel:+.2%}) {verdict}"
    print(line)
    if rel > tol:
        failures.append(line)

if failures:
    print(f"\nbench-check FAILED: {len(failures)} cell(s) beyond {tol:.1%} vs {old_path}", file=sys.stderr)
    for line in failures:
        print(f"  {line}", file=sys.stderr)
    sys.exit(1)
print(f"bench-check OK: no modeled_ms regression beyond {tol:.1%} vs {old_path}")
PY
