#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, release build, full test suite.
# Usage: scripts/ci.sh   (run from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (best-effort)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    clippy not installed; skipping"
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --release -q

echo "==> modeled-perf golden snapshot"
# The simulator is deterministic: kernel cycle counts and cache counters
# must match tests/golden/modeled_perf.txt exactly (TC_BLESS=1 regenerates).
cargo test --release -q --test modeled_perf_golden

echo "==> balanced scheduler smoke"
./target/release/repro balance --scale smoke > /dev/null

echo "==> bench artifact is valid JSON"
./target/release/repro bench --scale smoke --out /tmp/tc_bench_smoke.json > /dev/null
python3 - <<'PY'
import json
for path in ["/tmp/tc_bench_smoke.json", "BENCH_3.json"]:
    with open(path) as f:
        doc = json.load(f)
    assert doc["bench"] == 3 and doc["entries"], path
    for e in doc["entries"]:
        assert {"graph", "backend", "triangles", "modeled_ms", "host_wall_ms"} <= e.keys(), path
print("bench artifacts OK")
PY

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> sanitized smoke gate"
# Two representative suite graphs (a clique-union co-paper analog and a
# Kronecker rung) must run sanitizer-clean: tcount exits nonzero on any
# memcheck/initcheck/racecheck finding.
./target/release/tcount suite:dblp --backend gtx980/sanitize > /dev/null
./target/release/tcount suite:kronecker-8 --backend c2050/balanced --sanitize > /dev/null

echo "==> sanitizer seeded-bug self-test"
# The gate above proves the sanitizer stays quiet on clean runs; this one
# proves it actually fires — an OOB read, an uninitialized read, and a
# write-write race must each be detected.
./target/release/tcount sanitize-selftest > /dev/null

echo "==> ci OK"
