#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, release build, full test suite.
# Usage: scripts/ci.sh   (run from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (best-effort)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    clippy not installed; skipping"
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --release -q

echo "==> ci OK"
