#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, release build, full test suite.
# Usage: scripts/ci.sh   (run from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings \
    -W clippy::needless_pass_by_value -W clippy::redundant_clone

echo "==> workspace determinism lint"
# The modeled layers must stay bit-deterministic: same input, same modeled
# numbers, same serialized bytes. Two classes of nondeterminism are banned
# there outright:
#   * host time sources (Instant::now / SystemTime) — modeled seconds come
#     from the simulator's clock, never the wall;
#   * hash-order collections (HashMap / HashSet) — their iteration order
#     is randomized per process and anything they feed (reports, JSON,
#     bin plans) would drift run to run; use BTreeMap/BTreeSet/Vec.
# Allowlisted by construction (outside the path set below): advisory
# telemetry that is *documented* host-measured — the engine's queue-wait
# metric and CPU-backend wall timings (crates/engine, crates/core/count.rs
# CPU path) and the bench harness's advisory host_wall_ms. Test modules
# are exempt too: the awk pass goes quiet at the first #[cfg(test)].
DET_PATHS="crates/simt/src crates/graph/src crates/gen/src \
           crates/core/src/gpu crates/core/src/cpu"
# shellcheck disable=SC2086
find $DET_PATHS -name '*.rs' -print0 | xargs -0 awk '
    FNR == 1 { intest = 0 }
    /#\[cfg\(test\)\]/ { intest = 1 }
    intest { next }
    /Instant::now|SystemTime/ {
        printf "%s:%d: host time source in a deterministic module\n", FILENAME, FNR
        bad = 1
    }
    /HashMap|HashSet/ {
        printf "%s:%d: hash-order collection in a deterministic module (use BTreeMap/BTreeSet/Vec)\n", FILENAME, FNR
        bad = 1
    }
    END { exit bad }
'
echo "deterministic modules are clock-free and hash-order-free"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --release -q

echo "==> modeled-perf golden snapshot"
# The simulator is deterministic: kernel cycle counts and cache counters
# must match tests/golden/modeled_perf.txt exactly (TC_BLESS=1 regenerates).
cargo test --release -q --test modeled_perf_golden

echo "==> balanced scheduler smoke"
./target/release/repro balance --scale smoke > /dev/null

echo "==> cluster sharding smoke"
# A sharded 2x2 cluster run must agree with the single device (the
# integration suite holds this byte-for-byte across the whole matrix;
# this is the CLI-path canary).
./target/release/tcount suite:dblp --backend cluster:2x2/gtx980/balanced > /dev/null

echo "==> bench artifact is valid JSON"
./target/release/repro bench --scale smoke --out /tmp/tc_bench_smoke.json > /dev/null
python3 - <<'PY'
import json
with open("/tmp/tc_bench_smoke.json") as f:
    doc = json.load(f)
assert doc["bench"] == 6 and doc["entries"]
for e in doc["entries"]:
    assert {"graph", "backend", "triangles", "modeled_ms", "advisory"} <= e.keys(), e
    assert "host_wall_ms" not in e, "host_wall_ms must live under advisory"
    adv = e["advisory"]
    assert adv is None or set(adv.keys()) == {"host_wall_ms"}, e
# The committed prior artifacts still parse (including the old flat schema).
for path, seq in [("BENCH_3.json", 3), ("BENCH_4.json", 4), ("BENCH_5.json", 5)]:
    with open(path) as f:
        doc = json.load(f)
    assert doc["bench"] == seq and doc["entries"], path
print("bench artifacts OK")
PY

echo "==> bench-regression gate (committed artifacts)"
# Modeled milliseconds are simulator-exact: any drift beyond tolerance in
# the committed perf trajectory is a real regression.
scripts/bench_check.sh BENCH_6.json BENCH_5.json > /dev/null

echo "==> telemetry determinism gate"
# The engine's metrics snapshot and unified request trace must be
# byte-identical across worker counts for the same jobfile (CI mode nulls
# the advisory host-measured section).
cat > /tmp/tc_telemetry_jobs.txt <<'JOBS'
graph=watts-strogatz backend=gtx980 repeat=3
graph=kronecker-6 backend=gtx980/balanced repeat=2
graph=watts-strogatz backend=forward
JOBS
for w in 1 2 4; do
    TC_TELEMETRY_CI=1 ./target/release/tcount batch /tmp/tc_telemetry_jobs.txt \
        --workers "$w" --metrics "/tmp/tc_metrics_w$w.json" \
        --prom "/tmp/tc_metrics_w$w.prom" --trace "/tmp/tc_trace_w$w.json" > /dev/null
done
cmp /tmp/tc_metrics_w1.json /tmp/tc_metrics_w2.json
cmp /tmp/tc_metrics_w1.json /tmp/tc_metrics_w4.json
cmp /tmp/tc_trace_w1.json /tmp/tc_trace_w2.json
cmp /tmp/tc_trace_w1.json /tmp/tc_trace_w4.json
python3 -c "import json; json.load(open('/tmp/tc_metrics_w1.json')); json.load(open('/tmp/tc_trace_w1.json'))"
echo "telemetry artifacts byte-identical across workers 1/2/4"

echo "==> prometheus exposition lint"
# Series must be sorted with no duplicates, every series preceded by its
# family's HELP/TYPE header, and histogram buckets cumulative.
python3 - <<'PY'
seen, families, cur = set(), [], None
for line in open("/tmp/tc_metrics_w1.prom"):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# HELP "):
        cur = line.split()[2]
        assert cur not in families, f"duplicate family {cur}"
        families.append(cur)
        continue
    if line.startswith("# TYPE "):
        assert line.split()[2] == cur, f"TYPE out of order: {line}"
        continue
    series = line.rsplit(" ", 1)[0]
    assert series not in seen, f"duplicate series {series}"
    seen.add(series)
    name = series.split("{")[0]
    base = name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
    assert base == cur, f"series {series} outside its family block ({cur})"
assert families == sorted(families), "families not sorted"
print(f"prometheus exposition OK ({len(families)} families, {len(seen)} series)")
PY

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> doctests"
# Example-bearing API docs are executable; keep them honest.
cargo test --workspace --release -q --doc

echo "==> sanitized smoke gate"
# Two representative suite graphs (a clique-union co-paper analog and a
# Kronecker rung) must run sanitizer-clean: tcount exits nonzero on any
# memcheck/initcheck/racecheck finding.
./target/release/tcount suite:dblp --backend gtx980/sanitize > /dev/null
./target/release/tcount suite:kronecker-8 --backend c2050/balanced --sanitize > /dev/null
# Hash-strategy + reorder token path end to end. At smoke scale the tuner
# degrades balanced+hash to the plain balanced plan (graceful degradation);
# the sanitizer integration test covers an actually-engaged hash bin.
./target/release/tcount suite:citeseer --backend gtx980/balanced+hash/reorder/sanitize > /dev/null

echo "==> sanitizer seeded-bug self-test"
# The gate above proves the sanitizer stays quiet on clean runs; this one
# proves it actually fires — an OOB read, an uninitialized read, and a
# write-write race must each be detected.
./target/release/tcount sanitize-selftest > /dev/null

echo "==> static verifier gate"
# Every kernel launch in a full balanced+hash run must carry an access
# contract that proves in-bounds and race-free against the live
# allocation map; tcount exits nonzero on any verifier finding (including
# a Paranoid trace-containment mismatch — a dishonest contract).
./target/release/tcount suite:dblp --backend gtx980/balanced+hash/verify > /dev/null
./target/release/tcount suite:citeseer --backend gtx980/balanced+hash/reorder/sanitize:paranoid/verify > /dev/null

echo "==> verifier seeded-lie self-test"
# Mirror image of the gate above: kernels whose contracts *lie* (footprint
# too narrow, false disjointness claim, understated shared budget,
# out-of-bounds footprint) must each be caught.
./target/release/tcount verify-selftest > /dev/null

echo "==> ci OK"
