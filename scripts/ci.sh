#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, release build, full test suite.
# Usage: scripts/ci.sh   (run from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (best-effort)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    clippy not installed; skipping"
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --release -q

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> deprecated entry points"
# count_triangles/count_triangles_detailed are deprecated shims over
# CountRequest; only their own definition site (and the facade re-exports,
# which carry #[allow(deprecated)]) may mention them.
deprecated_calls=$(grep -rn --include='*.rs' \
    -e 'count_triangles(' -e 'count_triangles_detailed(' \
    src crates tests examples \
    | grep -v '^crates/core/src/count.rs:' \
    | grep -v '^crates/core/src/lib.rs:' \
    | grep -v '^src/lib.rs:' || true)
if [ -n "$deprecated_calls" ]; then
    echo "error: in-tree callers of deprecated entry points:" >&2
    echo "$deprecated_calls" >&2
    exit 1
fi

echo "==> ci OK"
