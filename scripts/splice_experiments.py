#!/usr/bin/env python3
"""Splice the `repro all` output into EXPERIMENTS.md.

Usage: python3 scripts/splice_experiments.py [results/repro_output.txt ...]

Replaces the `<!-- SECTION -->` placeholders (or previously spliced fenced
blocks that follow them) with fenced code blocks containing the matching
section of the repro output, so EXPERIMENTS.md always reflects one concrete
measured run.
"""

import re
import sys

MARKERS = {
    "TABLE1": "== Table I:",
    "TABLE2": "== Table II:",
    "FIGURE1": "== Figure 1:",
    "ABLATIONS": "== Section III-D",
    "AMDAHL": "== Section III-E",
    "INPUT_FORMAT": "== Section III-A",
    "APPROX": "== Section V:",
    "TUNING": "== Section III-C:",
    "BALANCE": "== Balanced scheduling",
    "HASH": "== Hash intersection",
    "CLUSTER": "== Cluster sharding",
}


def split_sections(text: str) -> dict:
    sections = {}
    current_key, current_lines = None, []
    for line in text.splitlines():
        if line.startswith("== "):
            if current_key:
                sections[current_key] = "\n".join(current_lines).rstrip()
            current_key, current_lines = line, [line]
        elif current_key:
            current_lines.append(line)
    if current_key:
        sections[current_key] = "\n".join(current_lines).rstrip()
    return sections


def main() -> int:
    srcs = (
        sys.argv[1:]
        if len(sys.argv) > 1
        else ["results/repro_output.txt", "results/tuning_output.txt"]
    )
    sections = {}
    for src in srcs:
        sections.update(split_sections(open(src).read()))
    doc = open("EXPERIMENTS.md").read()

    for name, prefix in MARKERS.items():
        body = next((v for k, v in sections.items() if k.startswith(prefix)), None)
        if body is None:
            print(f"warning: no section starting with {prefix!r} in {srcs}")
            continue
        block = f"<!-- {name} -->\n```text\n{body}\n```"
        # Replace the marker plus any previously spliced fenced block.
        pattern = re.compile(rf"<!-- {name} -->(?:\n```text\n.*?\n```)?", re.DOTALL)
        if not pattern.search(doc):
            print(f"warning: no marker for {name} in EXPERIMENTS.md")
            continue
        doc = pattern.sub(lambda _: block, doc, count=1)

    open("EXPERIMENTS.md", "w").write(doc)
    print("EXPERIMENTS.md updated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
